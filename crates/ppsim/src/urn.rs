//! Count-based ("urn") simulator.
//!
//! Agents in a population protocol are anonymous, so a configuration is fully
//! described by the multiset of states — an urn. Sampling an ordered pair of
//! distinct agents is equivalent to:
//!
//! 1. draw a state `r` with probability `count[r] / n` (the responder),
//! 2. remove one ball of state `r`,
//! 3. draw a state `i` with probability `count[i] / (n − 1)` (the initiator),
//! 4. apply `δ`, put the two resulting balls back.
//!
//! This gives a process statistically identical to [`crate::AgentSim`] while
//! storing only `|states|` counters, so the population size is limited only
//! by `u64`. Each interaction costs O(log |states|) through a Fenwick tree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::batch::{
    collision_free_run, draw_without_replacement_sparse, hypergeometric, BatchPolicy,
};
use crate::fenwick::Fenwick;
use crate::protocol::{EnumerableProtocol, Output, Simulator, NUM_OUTPUTS};

/// Scale factor for the engine's internal sampling batches: sub-batches are
/// `INNER_BATCH_SCALE · √n`, rounded down to a power of two. Per-sub-batch
/// fixed cost (snapshot + merge, O(occupied)) shrinks with larger
/// sub-batches while collision-handling cost grows as 2b²/n, so the optimum
/// sits at Θ(√n); the constant was picked from the `engine_batched`
/// criterion sweep on `Gsu19`.
const INNER_BATCH_SCALE: u64 = 4;

/// Size of the internal exact sub-batches [`UrnSim::steps_batched`] splits
/// its scheduling blocks into: `INNER_BATCH_SCALE·√n` rounded down to a
/// power of two (so power-of-two blocks subdivide without ragged tails),
/// clamped into `[1, n/2]`. Exactness does not depend on this — every
/// sub-batch is exactly distributed, and exact sampling composes — so it is
/// purely a throughput knob.
fn inner_batch_size(n: u64) -> u64 {
    let target = ((n as f64).sqrt() as u64).saturating_mul(INNER_BATCH_SCALE);
    let pow2 = if target <= 1 {
        1
    } else {
        1u64 << (63 - target.leading_zeros())
    };
    pow2.clamp(1, (n / 2).max(1))
}

/// Collision patterns of the shuffled sub-batch path: which side of the
/// colliding pair is a repeat (touched) agent. `PAT_NONE` marks a segment
/// that ends the sub-batch without a collision.
const PAT_TU: u8 = 0;
const PAT_UT: u8 = 1;
const PAT_TT: u8 = 2;
const PAT_NONE: u8 = 3;

/// Occupancy ceiling for the shuffled path's dense pair-transition cache
/// (`occ²` entries). Above it — only brief transients for the protocols in
/// this repo — transitions are evaluated directly instead.
const PAIR_CACHE_MAX_OCC: usize = 256;

/// Reusable buffers for [`UrnSim::step_batch`], kept across batches so the
/// batched path never allocates in steady state.
#[derive(Clone, Debug, Default)]
struct BatchScratch {
    /// Ids of states with non-zero multiplicity at the batch snapshot.
    occupied: Vec<usize>,
    /// Multiplicities of the *untouched* agents per `occupied` slot
    /// (parallel array), consumed as agents are drawn into the batch.
    pool: Vec<u64>,
    /// Sparse (occupied slot, count) responder draws of the current
    /// collision-free run.
    resp_nz: Vec<(u32, u64)>,
    /// Sparse (occupied slot, remaining count) initiator mass of the current
    /// run, consumed during pairing.
    init_nz: Vec<(u32, u64)>,
    /// Post-update state multiset of the batch's *touched* agents (dense per
    /// state id; collisions resample from this, which is what makes the
    /// batch exact).
    touched_counts: Vec<u64>,
    /// State ids with non-zero `touched_counts`, in insertion order.
    touched_ids: Vec<u32>,
    /// Position of each id in `touched_ids` (`u32::MAX` when absent).
    touched_pos: Vec<u32>,
    /// Net multiplicity change per state id accumulated over the batch
    /// (dense, zeroed after each apply).
    delta: Vec<i64>,
    /// State ids with possibly non-zero `delta` (may contain duplicates).
    dirty: Vec<u32>,
    /// Collision-free run length per segment of the current shuffled
    /// sub-batch (scalar pre-pass output).
    seg_runs: Vec<u64>,
    /// Collision pattern ending each segment (`PAT_*`; `PAT_NONE` for the
    /// final segment).
    seg_pats: Vec<u8>,
    /// Shuffled stream of fresh participants as occupied-slot indices, in
    /// consumption order (shuffled sub-batch path).
    flat: Vec<u32>,
    /// Dense pair-transition memo for the shuffled path, keyed by
    /// `responder_slot · occ + initiator_slot`: (generation stamp, responder
    /// successor id, initiator successor id). Entries from older sub-batches
    /// are invalidated by the generation stamp, never by clearing.
    pair_cache: Vec<(u32, u32, u32)>,
    /// Current generation of `pair_cache` (0 = never valid).
    cache_gen: u32,
    /// Recorded (responder, initiator) state-id pairs — the batch's implicit
    /// sequential trace, in execution order (filled only when recording).
    trace: Vec<(u32, u32)>,
    /// Net deltas actually applied at each sub-batch merge, for rewinding
    /// (filled only when recording).
    undo: Vec<(u32, i64)>,
    /// Start index in `undo` of each recorded sub-batch's segment.
    undo_marks: Vec<usize>,
}

impl BatchScratch {
    /// Add `m` agents of state `id` to the touched multiset.
    #[inline]
    fn touched_insert(&mut self, id: usize, m: u64) {
        let c = self.touched_counts[id];
        if c == 0 {
            self.touched_pos[id] = self.touched_ids.len() as u32;
            self.touched_ids.push(id as u32);
        }
        self.touched_counts[id] = c + m;
    }

    /// Remove one uniformly-chosen agent from the touched multiset (which
    /// holds `total` agents), returning its state id.
    #[inline]
    fn touched_remove_one<R: Rng>(&mut self, rng: &mut R, total: u64) -> usize {
        debug_assert!(total > 0);
        let mut x = rng.gen_range(0..total);
        let mut k = 0usize;
        loop {
            let id = self.touched_ids[k] as usize;
            let c = self.touched_counts[id];
            if x < c {
                self.touched_counts[id] = c - 1;
                if c == 1 {
                    self.touched_pos[id] = u32::MAX;
                    self.touched_ids.swap_remove(k);
                    if k < self.touched_ids.len() {
                        self.touched_pos[self.touched_ids[k] as usize] = k as u32;
                    }
                }
                return id;
            }
            x -= c;
            k += 1;
        }
    }

    /// Remove one uniformly-chosen agent from the untouched pool (which
    /// holds `untouched` agents), returning its state id.
    #[inline]
    fn pool_draw_one<R: Rng>(&mut self, rng: &mut R, untouched: u64) -> usize {
        debug_assert!(untouched > 0);
        let mut x = rng.gen_range(0..untouched);
        let mut j = 0usize;
        loop {
            let c = self.pool[j];
            if x < c {
                self.pool[j] = c - 1;
                return self.occupied[j];
            }
            x -= c;
            j += 1;
        }
    }
}

/// Urn simulator over an [`EnumerableProtocol`].
pub struct UrnSim<P: EnumerableProtocol> {
    protocol: P,
    /// Weighted sampling structure; weight of slot `id` = multiplicity of the
    /// state with that id.
    urn: Fenwick,
    /// Dense mirror of the urn weights: `counts[id]` = multiplicity of state
    /// `id`. Kept in lock-step with `urn`; the batched path reads and
    /// updates it directly and replays net changes into the Fenwick tree.
    counts: Vec<u64>,
    /// Ids of states with non-zero multiplicity, in insertion order
    /// (deterministic, not sorted). Maintained incrementally so the batched
    /// path's per-batch overhead is O(occupied), not O(|states|).
    occupied_ids: Vec<usize>,
    /// Position of each id in `occupied_ids` (`u32::MAX` when absent).
    occupied_pos: Vec<u32>,
    /// Cached decode table: `state_of[id]` = the state with id `id`.
    state_of: Vec<P::State>,
    /// Cached output per state id.
    output_of: Vec<Output>,
    population: u64,
    rng: SmallRng,
    interactions: u64,
    output_counts: [u64; NUM_OUTPUTS],
    scratch: BatchScratch,
}

impl<P: EnumerableProtocol> UrnSim<P> {
    /// Cost ratio between one conditional hypergeometric call (bucketized
    /// path, per pairing bucket) and one buffered shuffle draw (shuffled
    /// path, per stream element) — see the dispatch in
    /// [`UrnSim::step_batch`]. Empirical, from the `engine_batched`
    /// criterion sweep; the dispatch stays a deterministic function of
    /// `(b, n, occupancy)` whatever its value.
    const BUCKETIZED_RUN_FACTOR: f64 = 3.0;

    /// Create an urn with `n` agents in the initial state.
    ///
    /// # Panics
    /// Panics if `n < 2` or if the protocol's encode/decode pair is not
    /// inverse on the initial state.
    pub fn new(protocol: P, n: u64, seed: u64) -> Self {
        assert!(n >= 2, "population must contain at least two agents");
        let s = protocol.num_states();
        let mut state_of = Vec::with_capacity(s);
        let mut output_of = Vec::with_capacity(s);
        for id in 0..s {
            let st = protocol.state_from_id(id);
            debug_assert_eq!(
                protocol.state_id(st),
                id,
                "state_id/state_from_id must be mutually inverse"
            );
            output_of.push(protocol.output(st));
            state_of.push(st);
        }
        let init = protocol.initial_state();
        let init_id = protocol.state_id(init);
        assert!(init_id < s, "initial state id out of range");
        let mut urn = Fenwick::new(s);
        urn.add(init_id, n as i64);
        let mut counts = vec![0u64; s];
        counts[init_id] = n;
        let mut occupied_pos = vec![u32::MAX; s];
        occupied_pos[init_id] = 0;
        let mut output_counts = [0u64; NUM_OUTPUTS];
        output_counts[protocol.output(init) as usize] = n;
        Self {
            protocol,
            urn,
            counts,
            occupied_ids: vec![init_id],
            occupied_pos,
            state_of,
            output_of,
            population: n,
            rng: SmallRng::seed_from_u64(seed),
            interactions: 0,
            output_counts,
            scratch: BatchScratch::default(),
        }
    }

    /// Apply a multiplicity change to state `id` in both count structures
    /// and the occupancy index (but not the Fenwick tree — callers pair
    /// this with `urn.add`).
    #[inline]
    fn add_count(&mut self, id: usize, delta: i64) {
        let old = self.counts[id];
        let new = (old as i64 + delta) as u64;
        self.counts[id] = new;
        if old == 0 && new > 0 {
            self.occupied_pos[id] = self.occupied_ids.len() as u32;
            self.occupied_ids.push(id);
        } else if old > 0 && new == 0 {
            let pos = self.occupied_pos[id] as usize;
            self.occupied_ids.swap_remove(pos);
            self.occupied_pos[id] = u32::MAX;
            if pos < self.occupied_ids.len() {
                self.occupied_pos[self.occupied_ids[pos]] = pos as u32;
            }
        }
    }

    /// Create an urn with an explicit initial configuration given as
    /// (state, multiplicity) pairs. See [`crate::AgentSim::with_states`] for
    /// the rationale.
    ///
    /// # Panics
    /// Panics if the total population is below two.
    pub fn with_counts(protocol: P, counts: &[(P::State, u64)], seed: u64) -> Self {
        let n: u64 = counts.iter().map(|&(_, c)| c).sum();
        let mut sim = Self::new(protocol, n.max(2), seed);
        assert!(n >= 2, "population must contain at least two agents");
        // Rebuild the urn from the explicit configuration.
        let init_id = sim.protocol.state_id(sim.protocol.initial_state());
        sim.urn.add(init_id, -(n as i64));
        sim.add_count(init_id, -(n as i64));
        sim.output_counts = [0; NUM_OUTPUTS];
        for &(s, c) in counts {
            let id = sim.protocol.state_id(s);
            sim.urn.add(id, c as i64);
            sim.add_count(id, c as i64);
            sim.output_counts[sim.protocol.output(s) as usize] += c;
        }
        sim
    }

    /// Multiplicity of the state with id `id`.
    pub fn count_of_id(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// The protocol instance driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All (state, multiplicity) pairs with non-zero multiplicity.
    pub fn nonzero_counts(&self) -> Vec<(P::State, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(id, &c)| (self.state_of[id], c))
            .collect()
    }

    /// Execute `k` interactions, sampling whole batches at once where
    /// `policy` allows it.
    ///
    /// *Exactly* equivalent in distribution to `k` calls of
    /// [`Simulator::step`] (see [`crate::batch`]): each batch alternates
    /// collision-free runs of fresh agents with individually-sampled
    /// collision interactions whose repeat participants are resampled from
    /// the post-update touched multiset, so the batch is bit-for-bit a
    /// sequential chain under the shared trace decoding. The policy's block
    /// size is a *scheduling* granularity only — internally each block is
    /// split into [`inner_batch_size`] sub-batches (≈√n) so sampling cost
    /// stays optimal regardless of how coarse the blocks are. Falls back to
    /// per-step sampling whenever the policy's block size is < 4 (per-step
    /// policy, small population) or would exceed n/2.
    ///
    /// Deterministic: a fixed (seed, `k`, `policy`) triple always produces
    /// the same configuration. Note the RNG consumption differs from the
    /// sequential path's, so batched and per-step runs of the same seed are
    /// different (equally valid) samples of the process.
    pub fn steps_batched(&mut self, k: u64, policy: &BatchPolicy) {
        let mut left = k;
        while left > 0 {
            let block = policy.batch_size(self.population).min(left);
            // Batches need 2b ≤ n distinct agents; tiny remainders are
            // cheaper sequentially than through the batch machinery. The
            // half-check divides rather than doubling so hand-built
            // policies can never wrap it.
            if block < 4 || block > self.population / 2 {
                self.step();
                left -= 1;
                continue;
            }
            if policy.is_approximate() {
                // The approximate engine's speed comes from sampling the
                // whole block as one multinomial; subdividing it would just
                // shrink the bias toward the exact engine at the exact
                // engine's cost. One block, one draw.
                self.step_batch_approx(block);
                left -= block;
                continue;
            }
            let inner = inner_batch_size(self.population);
            let mut rem = block;
            while rem > 0 {
                let b = inner.min(rem);
                self.step_batch(b, false);
                rem -= b;
            }
            left -= block;
        }
    }

    /// Like [`UrnSim::steps_batched`], but also appends the batch's implicit
    /// sequential trace — the ordered (responder, initiator) state-id pairs
    /// of every interaction — to `out`. Replaying the trace pair-by-pair
    /// with [`UrnSim::replay_interaction`] from the starting configuration
    /// reproduces this simulator's configuration bit for bit; the
    /// equivalence suite uses this as the shared decoding that promotes the
    /// batched-vs-sequential gates from statistical to bit-level.
    ///
    /// # Panics
    /// Panics for [`BatchPolicy::ApproximateMultinomial`]: the approximate
    /// block sampler applies bucketed transitions with no interaction order,
    /// so no sequential trace exists to record — silently returning an
    /// empty or fabricated trace would defeat the bit-level gates this
    /// method exists for.
    pub fn steps_batched_traced(
        &mut self,
        k: u64,
        policy: &BatchPolicy,
        out: &mut Vec<(u32, u32)>,
    ) {
        assert!(
            !policy.is_approximate(),
            "approximate multinomial batches admit no sequential trace"
        );
        let mut left = k;
        while left > 0 {
            let block = policy.batch_size(self.population).min(left);
            if block < 4 || block > self.population / 2 {
                let (r_id, i_id) = self.step_ids();
                out.push((r_id as u32, i_id as u32));
                self.finish_pair(r_id, i_id);
                left -= 1;
                continue;
            }
            self.scratch.trace.clear();
            self.scratch.undo.clear();
            self.scratch.undo_marks.clear();
            let inner = inner_batch_size(self.population);
            let mut rem = block;
            while rem > 0 {
                let b = inner.min(rem);
                self.step_batch(b, true);
                rem -= b;
            }
            out.extend_from_slice(&self.scratch.trace);
            left -= block;
        }
    }

    /// Sample and apply one exact sub-batch of `b` interactions (`2b ≤ n`),
    /// dispatching between the two interchangeable exact samplers.
    ///
    /// Both paths draw the same process — the distribution of a sub-batch is
    /// exactly that of `b` sequential steps — but their costs scale
    /// differently with the number of occupied states `occ` and the expected
    /// collision-free run length:
    ///
    /// * the **bucketized** path ([`UrnSim::step_batch_bucketed`]) pays
    ///   Θ(occ + cells) of hypergeometric work *per segment*, amortised over
    ///   the segment's run — a win when runs dwarf `occ²` (huge n, or
    ///   protocols with a handful of states);
    /// * the **shuffled** path ([`UrnSim::step_batch_shuffled`]) pays O(1)
    ///   per interaction (a memoized pair transition plus stream reads)
    ///   after one composition draw and one Fisher–Yates shuffle per
    ///   sub-batch — a win whenever runs are short relative to `occ²`.
    ///
    /// The dispatch predicate compares the expected run length
    /// `b / (1 + b²/n)` (the sub-batch's interactions divided by its
    /// expected segment count) against `occ²`, and is a deterministic
    /// function of (b, n, occupancy), so same-seed runs always pick the same
    /// path and chunked execution stays bit-reproducible.
    fn step_batch(&mut self, b: u64, record: bool) {
        let bf = b as f64;
        let avg_run = bf / (1.0 + bf * bf / self.population as f64);
        let occ = self.occupied_ids.len() as f64;
        // The bucketized path pays ~occ² conditional hypergeometric calls
        // per segment (the pairing chain), the shuffled path ~2 buffered
        // index draws per interaction. A hypergeometric call costs roughly
        // an order of magnitude more than a shuffle element (Lanczos/
        // Stirling evaluations vs a masked bit take), so runs must dwarf
        // occ² by that factor before per-segment amortisation wins.
        // BUCKETIZED_RUN_FACTOR was fit on the `engine_batched` sweep:
        // Gsu19 mid-phase (occ ≈ 9–15, runs ≈ 241 at n = 2^20) sits firmly
        // in shuffled territory, while few-state protocols (occ ≤ 5) keep
        // the bucketized path's ~6 ns/interaction.
        if avg_run >= Self::BUCKETIZED_RUN_FACTOR * occ * occ {
            self.step_batch_bucketed(b, record);
        } else {
            self.step_batch_shuffled(b, record);
        }
    }

    /// Detach the scratch buffers (so the borrow checker lets the sampling
    /// phase call back into `self`; Vec capacities survive the round trip),
    /// size the dense maps, and snapshot the occupied states into parallel
    /// (id, multiplicity) arrays — O(occupied), thanks to the incremental
    /// occupancy index.
    fn begin_sub_batch(&mut self) -> BatchScratch {
        let mut sc = std::mem::take(&mut self.scratch);
        let s = self.counts.len();
        sc.delta.resize(s, 0);
        sc.touched_counts.resize(s, 0);
        sc.touched_pos.resize(s, u32::MAX);
        sc.occupied.clear();
        sc.pool.clear();
        for &id in &self.occupied_ids {
            sc.occupied.push(id);
            sc.pool.push(self.counts[id]);
        }
        sc
    }

    /// Merge a sub-batch's accumulated deltas into the counts mirror, the
    /// Fenwick tree, the occupancy index and the output counters, reset the
    /// touched multiset, and hand the scratch buffers back. `dirty` may hold
    /// duplicates; zeroing `delta` on apply makes repeats no-ops, so the
    /// undo log gets at most one entry per state id per sub-batch.
    fn merge_sub_batch(&mut self, mut sc: BatchScratch, record: bool) {
        if record {
            sc.undo_marks.push(sc.undo.len());
        }
        for k in 0..sc.dirty.len() {
            let id = sc.dirty[k] as usize;
            let d = sc.delta[id];
            if d != 0 {
                sc.delta[id] = 0;
                self.add_count(id, d);
                self.urn.add(id, d);
                let o = self.output_of[id] as usize;
                self.output_counts[o] = (self.output_counts[o] as i64 + d) as u64;
                if record {
                    sc.undo.push((id as u32, d));
                }
            }
        }
        sc.dirty.clear();
        for &id in &sc.touched_ids {
            sc.touched_counts[id as usize] = 0;
            sc.touched_pos[id as usize] = u32::MAX;
        }
        sc.touched_ids.clear();
        self.scratch = sc;
        debug_assert_eq!(self.urn.total(), self.population);
    }

    /// Bucketized exact sub-batch sampler.
    ///
    /// The batch alternates two kinds of segment until `b` interactions are
    /// placed:
    ///
    /// 1. A **collision-free run**: its length is drawn from the exact
    ///    survival distribution ([`collision_free_run`]), its `2·run` agents
    ///    are a without-replacement sample from the untouched pool (sparse
    ///    conditional hypergeometric chains), and the two role halves are
    ///    paired uniformly. The transition is applied once per
    ///    (responder, initiator) bucket.
    /// 2. A **collision interaction**: at least one participant has already
    ///    interacted this batch. The role pattern (touched/untouched) is
    ///    drawn from the exact conditional weights `u : u : t−1`, the
    ///    touched participants uniformly from the *post-update* touched
    ///    multiset, and the fresh participant (if any) from the pool.
    ///
    /// Net multiplicity changes merge into the Fenwick tree, counts mirror,
    /// occupancy index and output counters at the end. With `record`, the
    /// interaction trace and the merged deltas are logged so a caller can
    /// rewind the batch and replay it pair-by-pair (exact predicate stops).
    fn step_batch_bucketed(&mut self, b: u64, record: bool) {
        debug_assert!(b >= 1 && 2 * b <= self.population);
        let mut sc = self.begin_sub_batch();
        let n = self.population;
        let mut untouched = n;
        let mut touched_total = 0u64;
        let mut done = 0u64;
        while done < b {
            let run = collision_free_run(&mut self.rng, n, untouched, b - done);
            if run > 0 {
                // Roles: `run` responders, then `run` initiators from the
                // rest — one exchangeable without-replacement block.
                let mut pool_total = untouched;
                draw_without_replacement_sparse(
                    &mut self.rng,
                    run,
                    &mut sc.pool,
                    &mut pool_total,
                    &mut sc.resp_nz,
                );
                draw_without_replacement_sparse(
                    &mut self.rng,
                    run,
                    &mut sc.pool,
                    &mut pool_total,
                    &mut sc.init_nz,
                );
                untouched -= 2 * run;
                touched_total += 2 * run;
                self.pair_and_apply(&mut sc, run, record);
                done += run;
                if done == b {
                    break;
                }
            }
            // The run ended before the batch budget: the next interaction is
            // a collision. Pattern weights over ordered (responder,
            // initiator) role pairs, conditioned on "not both fresh":
            // (touched, fresh) : (fresh, touched) : (touched, touched)
            //   =    u         :       u          :       t − 1.
            let t = touched_total;
            let u = untouched;
            debug_assert!(t > 0, "a collision needs at least one touched agent");
            let w = 2.0 * u as f64 + (t - 1) as f64;
            let x = self.rng.gen::<f64>() * w;
            let (r_id, i_id) = if x < u as f64 {
                let r = sc.touched_remove_one(&mut self.rng, t);
                let i = sc.pool_draw_one(&mut self.rng, u);
                untouched -= 1;
                touched_total += 1;
                (r, i)
            } else if x < 2.0 * u as f64 {
                let r = sc.pool_draw_one(&mut self.rng, u);
                let i = sc.touched_remove_one(&mut self.rng, t);
                untouched -= 1;
                touched_total += 1;
                (r, i)
            } else {
                let r = sc.touched_remove_one(&mut self.rng, t);
                let i = sc.touched_remove_one(&mut self.rng, t - 1);
                (r, i)
            };
            let (r_new, i_new) = self
                .protocol
                .transition(self.state_of[r_id], self.state_of[i_id]);
            let rn_id = self.protocol.state_id(r_new);
            let in_id = self.protocol.state_id(i_new);
            sc.delta[r_id] -= 1;
            sc.delta[i_id] -= 1;
            sc.delta[rn_id] += 1;
            sc.delta[in_id] += 1;
            sc.dirty.push(r_id as u32);
            sc.dirty.push(i_id as u32);
            sc.dirty.push(rn_id as u32);
            sc.dirty.push(in_id as u32);
            sc.touched_insert(rn_id, 1);
            sc.touched_insert(in_id, 1);
            if record {
                sc.trace.push((r_id as u32, i_id as u32));
            }
            done += 1;
        }
        self.interactions += b;
        self.merge_sub_batch(sc, record);
    }

    /// Shuffled-stream exact sub-batch sampler.
    ///
    /// Same process as [`UrnSim::step_batch_bucketed`], factored so the
    /// per-interaction cost is O(1) instead of per-segment hypergeometric
    /// chains:
    ///
    /// 1. **Scalar pre-pass** — the segment structure (collision-free run
    ///    lengths, collision patterns) is sampled first, tracking only the
    ///    untouched/touched counters. Both distributions depend on the
    ///    counters alone, never on participant identities, so this is the
    ///    exact marginal of the sequential chain's segment structure.
    /// 2. **One composition draw** — the pre-pass fixes the total number of
    ///    fresh participants `F`; their state composition is one
    ///    without-replacement draw of `F` agents from the snapshot pool.
    ///    Fresh draws never depend on the touched multiset, so the fresh
    ///    subsequence of the sequential chain *is* a without-replacement
    ///    sample of size `F` — and a uniform shuffle (Fisher–Yates) of that
    ///    sample recovers the sequential draw order exactly
    ///    (exchangeability).
    /// 3. **Apply** — segments are applied in order, consuming the shuffled
    ///    stream pairwise for run interactions and one entry per fresh
    ///    collision participant; touched collision participants are drawn
    ///    from the live post-update touched multiset exactly as in the
    ///    bucketized path. Run transitions go through a generation-stamped
    ///    dense (responder slot, initiator slot) memo, so the protocol's
    ///    transition function runs at most once per ordered state pair per
    ///    sub-batch.
    ///
    /// Delta accounting differs from the bucketized path in one spot: fresh
    /// participants are subtracted from the configuration in bulk at the
    /// composition draw, so collision handling only subtracts the touched
    /// sides. Trace, undo and merge machinery are shared.
    fn step_batch_shuffled(&mut self, b: u64, record: bool) {
        debug_assert!(b >= 1 && 2 * b <= self.population);
        let mut sc = self.begin_sub_batch();
        let n = self.population;

        // Phase 1: scalar pre-pass over the segment structure.
        sc.seg_runs.clear();
        sc.seg_pats.clear();
        let mut untouched = n;
        let mut touched_total = 0u64;
        let mut fresh = 0u64;
        let mut done = 0u64;
        loop {
            let run = collision_free_run(&mut self.rng, n, untouched, b - done);
            sc.seg_runs.push(run);
            untouched -= 2 * run;
            touched_total += 2 * run;
            fresh += 2 * run;
            done += run;
            if done == b {
                sc.seg_pats.push(PAT_NONE);
                break;
            }
            // Pattern weights over ordered (responder, initiator) role
            // pairs, conditioned on "not both fresh" — identical to the
            // bucketized path's collision branch.
            let t = touched_total;
            let u = untouched;
            debug_assert!(t > 0, "a collision needs at least one touched agent");
            let w = 2.0 * u as f64 + (t - 1) as f64;
            let x = self.rng.gen::<f64>() * w;
            let pat = if x < u as f64 {
                PAT_TU
            } else if x < 2.0 * u as f64 {
                PAT_UT
            } else {
                PAT_TT
            };
            if pat != PAT_TT {
                untouched -= 1;
                touched_total += 1;
                fresh += 1;
            }
            sc.seg_pats.push(pat);
            done += 1;
        }

        // Phase 2: one composition draw for all fresh participants, with
        // their bulk removal from the configuration.
        let mut pool_total = n;
        draw_without_replacement_sparse(
            &mut self.rng,
            fresh,
            &mut sc.pool,
            &mut pool_total,
            &mut sc.resp_nz,
        );
        for &(j, c) in &sc.resp_nz {
            let id = sc.occupied[j as usize];
            sc.delta[id] -= c as i64;
            sc.dirty.push(id as u32);
        }

        // Phase 3: expand the composition into a flat slot stream and
        // shuffle it uniformly.
        sc.flat.clear();
        sc.flat.reserve(fresh as usize);
        for &(j, c) in &sc.resp_nz {
            for _ in 0..c {
                sc.flat.push(j);
            }
        }
        sc.resp_nz.clear();
        debug_assert_eq!(sc.flat.len() as u64, fresh);
        // Bit-buffered Fisher–Yates: packs the per-index bounded draws into
        // shared 64-bit words instead of burning one full xoshiro output per
        // swap (~6–10 bits actually needed per draw at batch sizes here).
        self.rng.shuffle(&mut sc.flat);

        // Phase 4: apply the segments against the shuffled stream.
        let occ = sc.occupied.len();
        let use_cache = occ <= PAIR_CACHE_MAX_OCC;
        if use_cache {
            sc.pair_cache.resize(occ * occ, (0, 0, 0));
            sc.cache_gen = sc.cache_gen.wrapping_add(1);
            if sc.cache_gen == 0 {
                // Generation counter wrapped: old stamps could collide, so
                // invalidate everything once and restart at 1.
                for e in &mut sc.pair_cache {
                    e.0 = 0;
                }
                sc.cache_gen = 1;
            }
        }
        let gen = sc.cache_gen;
        let mut idx = 0usize;
        let mut t_live = 0u64;
        for si in 0..sc.seg_runs.len() {
            for _ in 0..sc.seg_runs[si] {
                let jr = sc.flat[idx];
                let ji = sc.flat[idx + 1];
                idx += 2;
                let r_id = sc.occupied[jr as usize];
                let i_id = sc.occupied[ji as usize];
                let (rn_id, in_id) = if use_cache {
                    let key = jr as usize * occ + ji as usize;
                    let e = sc.pair_cache[key];
                    if e.0 == gen {
                        (e.1 as usize, e.2 as usize)
                    } else {
                        let (r_new, i_new) = self
                            .protocol
                            .transition(self.state_of[r_id], self.state_of[i_id]);
                        let rn = self.protocol.state_id(r_new);
                        let inn = self.protocol.state_id(i_new);
                        sc.pair_cache[key] = (gen, rn as u32, inn as u32);
                        (rn, inn)
                    }
                } else {
                    let (r_new, i_new) = self
                        .protocol
                        .transition(self.state_of[r_id], self.state_of[i_id]);
                    (self.protocol.state_id(r_new), self.protocol.state_id(i_new))
                };
                sc.delta[rn_id] += 1;
                sc.delta[in_id] += 1;
                sc.dirty.push(rn_id as u32);
                sc.dirty.push(in_id as u32);
                sc.touched_insert(rn_id, 1);
                sc.touched_insert(in_id, 1);
                if record {
                    sc.trace.push((r_id as u32, i_id as u32));
                }
            }
            t_live += 2 * sc.seg_runs[si];
            let pat = sc.seg_pats[si];
            if pat == PAT_NONE {
                break;
            }
            let (r_id, i_id) = match pat {
                PAT_TU => {
                    let r = sc.touched_remove_one(&mut self.rng, t_live);
                    t_live -= 1;
                    let i = sc.occupied[sc.flat[idx] as usize];
                    idx += 1;
                    sc.delta[r] -= 1;
                    sc.dirty.push(r as u32);
                    (r, i)
                }
                PAT_UT => {
                    let r = sc.occupied[sc.flat[idx] as usize];
                    idx += 1;
                    let i = sc.touched_remove_one(&mut self.rng, t_live);
                    t_live -= 1;
                    sc.delta[i] -= 1;
                    sc.dirty.push(i as u32);
                    (r, i)
                }
                _ => {
                    let r = sc.touched_remove_one(&mut self.rng, t_live);
                    let i = sc.touched_remove_one(&mut self.rng, t_live - 1);
                    t_live -= 2;
                    sc.delta[r] -= 1;
                    sc.delta[i] -= 1;
                    sc.dirty.push(r as u32);
                    sc.dirty.push(i as u32);
                    (r, i)
                }
            };
            let (r_new, i_new) = self
                .protocol
                .transition(self.state_of[r_id], self.state_of[i_id]);
            let rn_id = self.protocol.state_id(r_new);
            let in_id = self.protocol.state_id(i_new);
            sc.delta[rn_id] += 1;
            sc.delta[in_id] += 1;
            sc.dirty.push(rn_id as u32);
            sc.dirty.push(in_id as u32);
            sc.touched_insert(rn_id, 1);
            sc.touched_insert(in_id, 1);
            t_live += 2;
            if record {
                sc.trace.push((r_id as u32, i_id as u32));
            }
        }
        debug_assert_eq!(idx as u64, fresh, "shuffled stream fully consumed");
        self.interactions += b;
        self.merge_sub_batch(sc, record);
    }

    /// Pair the current run's responder and initiator halves uniformly and
    /// apply the transition per (responder, initiator) bucket, accumulating
    /// deltas and the post-update touched multiset in `sc`.
    fn pair_and_apply(&mut self, sc: &mut BatchScratch, run: u64, record: bool) {
        // Removing the drawn agents from the configuration.
        for &(j, c) in &sc.resp_nz {
            let id = sc.occupied[j as usize];
            sc.delta[id] -= c as i64;
            sc.dirty.push(id as u32);
        }
        for &(j, c) in &sc.init_nz {
            let id = sc.occupied[j as usize];
            sc.delta[id] -= c as i64;
            sc.dirty.push(id as u32);
        }
        // Uniform pairing row by row: for each responder state, distribute
        // its draws over the remaining initiator multiset with a conditional
        // multivariate-hypergeometric chain (same scheme and clamps as
        // `draw_without_replacement`, on the compact list, lazily compacted
        // as slots exhaust).
        let mut initiators_left = run;
        for ri in 0..sc.resp_nz.len() {
            let (j, r_draws) = sc.resp_nz[ri];
            let r_id = sc.occupied[j as usize];
            let r_state = self.state_of[r_id];
            let mut draws_left = r_draws;
            let mut total_left = initiators_left;
            let mut idx = 0usize;
            while draws_left > 0 {
                debug_assert!(idx < sc.init_nz.len());
                let (jj, c) = sc.init_nz[idx];
                if c == 0 {
                    // Exhausted by an earlier row: drop it (swap_remove
                    // pulls in a not-yet-visited entry, so don't advance).
                    sc.init_nz.swap_remove(idx);
                    continue;
                }
                let m = if total_left == c {
                    draws_left
                } else {
                    // Overflow-safe form of max(0, draws + c − total); see
                    // `draw_without_replacement`.
                    let lo = draws_left.saturating_sub(total_left - c);
                    let hi = c.min(draws_left);
                    hypergeometric(&mut self.rng, total_left, c, draws_left).clamp(lo, hi)
                };
                total_left -= c;
                idx += 1;
                if m == 0 {
                    continue;
                }
                sc.init_nz[idx - 1].1 = c - m;
                draws_left -= m;

                let i_id = sc.occupied[jj as usize];
                let (r_new, i_new) = self.protocol.transition(r_state, self.state_of[i_id]);
                let rn_id = self.protocol.state_id(r_new);
                let in_id = self.protocol.state_id(i_new);
                sc.delta[rn_id] += m as i64;
                sc.delta[in_id] += m as i64;
                sc.dirty.push(rn_id as u32);
                sc.dirty.push(in_id as u32);
                sc.touched_insert(rn_id, m);
                sc.touched_insert(in_id, m);
                if record {
                    for _ in 0..m {
                        sc.trace.push((r_id as u32, i_id as u32));
                    }
                }
            }
            initiators_left -= r_draws;
        }
        debug_assert_eq!(initiators_left, 0);
        sc.resp_nz.clear();
        sc.init_nz.clear();
    }

    /// **Approximate** legacy multinomial block sampler
    /// ([`BatchPolicy::ApproximateMultinomial`] only): draw the block's `b`
    /// responders, then its `b` initiators, without replacement from the
    /// block-**start** configuration and pair them uniformly — the PR 2
    /// engine. Transition outputs are invisible to sampling until the next
    /// block (no within-batch feedback), which is exactly the documented
    /// O(b/n) approximation; everything downstream of the role draws reuses
    /// the exact engine's pairing chain and merge machinery. No trace is
    /// recorded: this path cannot participate in bit-level replay or exact
    /// first-hit stops.
    fn step_batch_approx(&mut self, b: u64) {
        debug_assert!(b >= 1 && 2 * b <= self.population);
        let mut sc = self.begin_sub_batch();
        let mut pool_total = self.population;
        draw_without_replacement_sparse(
            &mut self.rng,
            b,
            &mut sc.pool,
            &mut pool_total,
            &mut sc.resp_nz,
        );
        draw_without_replacement_sparse(
            &mut self.rng,
            b,
            &mut sc.pool,
            &mut pool_total,
            &mut sc.init_nz,
        );
        self.pair_and_apply(&mut sc, b, false);
        self.interactions += b;
        self.merge_sub_batch(sc, false);
    }

    /// Draw an interaction pair and remove both balls from the urn; the
    /// caller finishes the interaction with [`UrnSim::finish_pair`].
    #[inline]
    fn step_ids(&mut self) -> (usize, usize) {
        let r_id = self.urn.find(self.rng.gen_range(0..self.population));
        self.urn.add(r_id, -1);
        self.add_count(r_id, -1);
        let i_id = self.urn.find(self.rng.gen_range(0..self.population - 1));
        self.urn.add(i_id, -1);
        self.add_count(i_id, -1);
        (r_id, i_id)
    }

    /// Apply the transition to a drawn (responder, initiator) pair whose
    /// balls have already been removed, reinsert the post-transition states
    /// and update the interaction and output counters.
    #[inline]
    fn finish_pair(&mut self, r_id: usize, i_id: usize) {
        let (r_new, i_new) = self
            .protocol
            .transition(self.state_of[r_id], self.state_of[i_id]);
        let rn_id = self.protocol.state_id(r_new);
        let in_id = self.protocol.state_id(i_new);
        self.urn.add(rn_id, 1);
        self.add_count(rn_id, 1);
        self.urn.add(in_id, 1);
        self.add_count(in_id, 1);
        self.interactions += 1;

        if rn_id != r_id {
            self.output_counts[self.output_of[r_id] as usize] -= 1;
            self.output_counts[self.output_of[rn_id] as usize] += 1;
        }
        if in_id != i_id {
            self.output_counts[self.output_of[i_id] as usize] -= 1;
            self.output_counts[self.output_of[in_id] as usize] += 1;
        }
    }

    /// Apply one interaction with *given* participant states: remove one
    /// ball of `r_id` and one of `i_id`, apply the transition, reinsert.
    ///
    /// This is the decoding side of the shared interaction trace: replaying
    /// a recorded batch trace pair-by-pair from the batch's starting
    /// configuration reproduces the batched engine's configurations — and
    /// every prefix is a configuration the sequential chain visits, which is
    /// what makes exact predicate stops possible.
    ///
    /// # Panics
    /// In debug builds, panics if either state has no balls left.
    pub fn replay_interaction(&mut self, r_id: u32, i_id: u32) {
        let (r_id, i_id) = (r_id as usize, i_id as usize);
        debug_assert!(self.counts[r_id] >= 1, "replay: responder state empty");
        self.urn.add(r_id, -1);
        self.add_count(r_id, -1);
        debug_assert!(self.counts[i_id] >= 1, "replay: initiator state empty");
        self.urn.add(i_id, -1);
        self.add_count(i_id, -1);
        self.finish_pair(r_id, i_id);
    }

    /// Rewind the most recent recorded block of `block` interactions: apply
    /// the logged sub-batch merge deltas in reverse segment order (each
    /// segment is an exact inverse, so counts never go transiently
    /// negative) and roll back the interaction and output counters.
    fn rewind_block(&mut self, block: u64) {
        let undo = std::mem::take(&mut self.scratch.undo);
        let marks = std::mem::take(&mut self.scratch.undo_marks);
        for seg in (0..marks.len()).rev() {
            let start = marks[seg];
            let end = if seg + 1 < marks.len() {
                marks[seg + 1]
            } else {
                undo.len()
            };
            for &(id, d) in &undo[start..end] {
                let id = id as usize;
                self.urn.add(id, -d);
                self.add_count(id, -d);
                let o = self.output_of[id] as usize;
                self.output_counts[o] = (self.output_counts[o] as i64 - d) as u64;
            }
        }
        self.interactions -= block;
        // Hand the (cleared) buffers back so their capacity is reused.
        let mut undo = undo;
        undo.clear();
        let mut marks = marks;
        marks.clear();
        self.scratch.undo = undo;
        self.scratch.undo_marks = marks;
        debug_assert_eq!(self.urn.total(), self.population);
    }
}

impl<P: EnumerableProtocol> Simulator for UrnSim<P> {
    type State = P::State;

    fn population(&self) -> u64 {
        self.population
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    #[inline]
    fn step(&mut self) {
        // Draw responder, remove it from the urn, draw initiator from the
        // remaining n-1 balls, then reinsert the post-transition states.
        let (r_id, i_id) = self.step_ids();
        self.finish_pair(r_id, i_id);
    }

    /// Batched bulk execution: delegates to [`UrnSim::steps_batched`].
    fn steps_bulk(&mut self, k: u64, policy: &BatchPolicy) {
        self.steps_batched(k, policy);
    }

    /// Batched predicate stop with *exact* first-hit semantics.
    ///
    /// Blocks are executed with trace recording; the predicate is probed at
    /// block granularity (cheap), and when it flips the block is rewound and
    /// replayed pair-by-pair from its recorded trace to find the exact first
    /// interaction after which the predicate holds. For the monotone /
    /// eventually-stable predicates this repo uses (stable election, census
    /// thresholds) the reported count is therefore exactly the sequential
    /// chain's first-hit time; for a non-monotone predicate it is the first
    /// hit *within the first block whose endpoint satisfies it* (earlier
    /// transient flips strictly inside an unsatisfied block are not probed).
    ///
    /// Under [`BatchPolicy::ApproximateMultinomial`] no trace exists, so
    /// stops are **block-granular**: the reported interaction count is
    /// rounded up to the end of the block in which the predicate first
    /// held — one more way that mode trades fidelity for speed.
    fn steps_until(
        &mut self,
        k: u64,
        policy: &BatchPolicy,
        pred: &mut dyn FnMut(&Self) -> bool,
    ) -> bool {
        if pred(self) {
            return true;
        }
        let mut left = k;
        while left > 0 {
            let block = policy.batch_size(self.population).min(left);
            if block < 4 || block > self.population / 2 {
                self.step();
                left -= 1;
                if pred(self) {
                    return true;
                }
                continue;
            }
            if policy.is_approximate() {
                self.step_batch_approx(block);
                left -= block;
                if pred(self) {
                    return true;
                }
                continue;
            }
            self.scratch.trace.clear();
            self.scratch.undo.clear();
            self.scratch.undo_marks.clear();
            let inner = inner_batch_size(self.population);
            let mut rem = block;
            while rem > 0 {
                let b = inner.min(rem);
                self.step_batch(b, true);
                rem -= b;
            }
            left -= block;
            if pred(self) {
                // The predicate flipped somewhere inside this block: rewind
                // it and replay the recorded trace one interaction at a time
                // until the predicate first holds. A full replay reproduces
                // the block-end configuration bit for bit, so the loop is
                // guaranteed to terminate with the predicate satisfied.
                self.rewind_block(block);
                let trace = std::mem::take(&mut self.scratch.trace);
                let mut hit = false;
                for &(r, i) in &trace {
                    self.replay_interaction(r, i);
                    if pred(self) {
                        hit = true;
                        break;
                    }
                }
                // A miss is impossible: the full replay equals the block-end
                // configuration, where the predicate held.
                debug_assert!(hit, "predicate held at block end but not on replay");
                let mut trace = trace;
                trace.clear();
                self.scratch.trace = trace;
                return true;
            }
        }
        false
    }

    fn output_counts(&self) -> [u64; NUM_OUTPUTS] {
        self.output_counts
    }

    fn current_epoch(&self) -> Option<u32> {
        let mut best = None;
        for (id, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let e = self.protocol.epoch_of(self.state_of[id]);
                if e > best {
                    best = e;
                }
            }
        }
        best
    }

    fn for_each_state(&self, f: &mut dyn FnMut(Self::State, u64)) {
        for (id, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                f(self.state_of[id], c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::runner::{run_until_stable, run_until_stable_with};

    /// The slow leader-election protocol with a dense 2-state encoding.
    struct Slow;
    impl Protocol for Slow {
        type State = bool;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, r: bool, i: bool) -> (bool, bool) {
            if r && i {
                (true, false)
            } else {
                (r, i)
            }
        }
        fn output(&self, s: bool) -> Output {
            if s {
                Output::Leader
            } else {
                Output::Follower
            }
        }
    }
    impl EnumerableProtocol for Slow {
        fn num_states(&self) -> usize {
            2
        }
        fn state_id(&self, s: bool) -> usize {
            s as usize
        }
        fn state_from_id(&self, id: usize) -> bool {
            id == 1
        }
    }

    #[test]
    fn urn_conserves_population() {
        let mut sim = UrnSim::new(Slow, 1000, 3);
        sim.steps(20_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn urn_slow_converges() {
        let mut sim = UrnSim::new(Slow, 256, 17);
        let res = run_until_stable(&mut sim, 10_000_000);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn urn_handles_large_population() {
        // A population that would need 1 GiB in an agent array is trivial
        // for the urn: just big counters.
        let mut sim = UrnSim::new(Slow, 1 << 30, 5);
        sim.steps(10_000);
        assert_eq!(sim.population(), 1 << 30);
        let leaders = sim.leaders();
        assert!(leaders < 1 << 30 && leaders > (1 << 30) - 10_001);
    }

    #[test]
    fn urn_and_agent_sim_agree_in_distribution() {
        // Compare mean convergence parallel time of the slow protocol on
        // n = 64 across engines; they simulate the same Markov chain so the
        // means must be statistically indistinguishable. Slow protocol
        // converges in ~n parallel time, tight concentration at this scale.
        use crate::agent_sim::AgentSim;
        let trials = 40;
        let mut urn_times = Vec::new();
        let mut arr_times = Vec::new();
        for t in 0..trials {
            let mut u = UrnSim::new(Slow, 64, 1000 + t);
            let r = run_until_stable(&mut u, 10_000_000);
            urn_times.push(r.parallel_time);
            let mut a = AgentSim::new(Slow, 64, 2000 + t);
            let r = run_until_stable(&mut a, 10_000_000);
            arr_times.push(r.parallel_time);
        }
        let mu: f64 = urn_times.iter().sum::<f64>() / trials as f64;
        let ma: f64 = arr_times.iter().sum::<f64>() / trials as f64;
        let rel = (mu - ma).abs() / ma;
        assert!(rel < 0.35, "urn {mu:.1} vs agent {ma:.1}");
    }

    /// Policy forcing batches even at unit-test populations.
    fn test_policy() -> BatchPolicy {
        BatchPolicy::Adaptive {
            shift: 4,
            min_population: 64,
        }
    }

    #[test]
    fn batched_conserves_population_and_outputs() {
        let mut sim = UrnSim::new(Slow, 10_000, 3);
        sim.steps_batched(200_000, &test_policy());
        assert_eq!(sim.interactions(), 200_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        let mut leaders = 0;
        sim.for_each_state(&mut |s, c| {
            if s {
                leaders += c;
            }
        });
        assert_eq!(leaders, sim.leaders());
        assert_eq!(sim.output_counts().iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn batched_slow_converges_to_one_leader() {
        let mut sim = UrnSim::new(Slow, 4096, 17);
        let res = run_until_stable_with(&mut sim, &test_policy(), 1 << 32);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
        // Exact first-hit stop: the reported interaction count is the one
        // that produced the single leader (no batch-boundary round-up), so
        // the simulator is left exactly at the stop.
        assert_eq!(res.interactions, sim.interactions());
    }

    #[test]
    fn batched_tracks_sequential_trajectory() {
        // Slow protocol marginal x(t) = 1/(1+t) — the batched path must
        // follow it just like the sequential one (the batch sampler is
        // exact, so the tolerance only covers sampling noise).
        let n = 1u64 << 14;
        let mut sim = UrnSim::new(Slow, n, 9);
        for k in 1..=6u64 {
            sim.steps_batched(2 * n, &test_policy());
            let t = 2.0 * k as f64;
            let expected = n as f64 / (1.0 + t);
            let rel = (sim.leaders() as f64 - expected).abs() / expected;
            assert!(rel < 0.2, "t={t}: {} vs {expected:.0}", sim.leaders());
        }
    }

    #[test]
    fn batched_at_exactly_min_population_batches() {
        // n = 4096 = DEFAULT_MIN_POPULATION: the boundary is "strictly
        // below", so at exactly 4096 the default policy batches (256 per
        // block). Stops are still exact — blocks are a scheduling
        // granularity, and the stop rewinds/replays to the first hit — so
        // unlike the legacy approximate engine the stopping time need not
        // land on a block boundary.
        let n = 4096u64;
        let policy = BatchPolicy::adaptive();
        assert_eq!(policy.batch_size(n), 256);
        let mut sim = UrnSim::new(Slow, n, 77);
        let res = run_until_stable_with(&mut sim, &policy, 1 << 40);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
        assert_eq!(res.interactions, sim.interactions());
    }

    #[test]
    fn traced_batches_replay_bit_identically() {
        // The shared trace decoding: a batched run's recorded
        // (responder, initiator) trace, replayed pair-by-pair on a fresh
        // urn, must reproduce the batched configuration bit for bit.
        let n = 4096u64;
        let mut batched = UrnSim::new(Slow, n, 41);
        let mut trace = Vec::new();
        batched.steps_batched_traced(10_000, &test_policy(), &mut trace);
        assert_eq!(trace.len(), 10_000);
        let mut replayed = UrnSim::new(Slow, n, 999);
        for &(r, i) in &trace {
            replayed.replay_interaction(r, i);
        }
        assert_eq!(replayed.nonzero_counts(), batched.nonzero_counts());
        assert_eq!(replayed.output_counts(), batched.output_counts());
        assert_eq!(replayed.interactions(), batched.interactions());
    }

    #[test]
    fn steps_until_matches_trace_first_hit() {
        // Exact-stop gate: the interaction count reported by `steps_until`
        // must equal the first-hit index in the recorded trace of the same
        // seeded run.
        let n = 4096u64;
        let policy = test_policy();
        let target = 40u64;
        let mut traced = UrnSim::new(Slow, n, 53);
        let mut trace = Vec::new();
        traced.steps_batched_traced(1 << 22, &policy, &mut trace);
        let mut replayed = UrnSim::new(Slow, n, 1);
        let mut first_hit = None;
        for (k, &(r, i)) in trace.iter().enumerate() {
            replayed.replay_interaction(r, i);
            if replayed.leaders() <= target {
                first_hit = Some(k as u64 + 1);
                break;
            }
        }
        let first_hit = first_hit.expect("trace long enough to hit target");
        let mut sim = UrnSim::new(Slow, n, 53);
        assert!(sim.steps_until(1 << 22, &policy, &mut |s: &UrnSim<Slow>| {
            s.leaders() <= target
        }));
        assert_eq!(sim.interactions(), first_hit);
        assert_eq!(sim.leaders(), target);
    }

    #[test]
    fn steps_until_budget_exhaustion_leaves_exact_count() {
        // When the predicate never fires the budget must be consumed
        // exactly, with no partial-block overshoot.
        let n = 4096u64;
        let mut sim = UrnSim::new(Slow, n, 7);
        assert!(!sim.steps_until(12_345, &test_policy(), &mut |_: &UrnSim<Slow>| false));
        assert_eq!(sim.interactions(), 12_345);
    }

    #[test]
    fn batch_size_one_consumes_rng_like_per_step() {
        // An adaptive policy whose batch degenerates to 1 (huge shift)
        // must take the exact sequential path: bit-identical
        // configurations, not just statistical agreement.
        let policy = BatchPolicy::Adaptive {
            shift: 63,
            min_population: 2,
        };
        assert_eq!(policy.batch_size(4096), 1);
        let mut batched = UrnSim::new(Slow, 4096, 23);
        let mut sequential = UrnSim::new(Slow, 4096, 23);
        batched.steps_batched(10_000, &policy);
        sequential.steps(10_000);
        assert_eq!(batched.nonzero_counts(), sequential.nonzero_counts());
        assert_eq!(batched.output_counts(), sequential.output_counts());
        assert_eq!(batched.interactions(), sequential.interactions());
    }

    #[test]
    fn batched_falls_back_to_per_step_below_min_population() {
        // Identical RNG consumption to the sequential path when the policy
        // says "don't batch": the configurations must match bit for bit.
        let policy = BatchPolicy::Adaptive {
            shift: 4,
            min_population: 1 << 20,
        };
        let mut batched = UrnSim::new(Slow, 500, 23);
        let mut sequential = UrnSim::new(Slow, 500, 23);
        batched.steps_batched(5_000, &policy);
        sequential.steps(5_000);
        assert_eq!(batched.nonzero_counts(), sequential.nonzero_counts());
        assert_eq!(batched.output_counts(), sequential.output_counts());
    }

    #[test]
    fn batched_heterogeneous_start() {
        let counts = [(true, 64u64), (false, 4032)];
        let mut sim = UrnSim::with_counts(Slow, &counts, 31);
        assert_eq!(sim.leaders(), 64);
        let res = run_until_stable_with(&mut sim, &test_policy(), 1 << 32);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn output_counts_track_urn_contents() {
        let mut sim = UrnSim::new(Slow, 500, 23);
        sim.steps(5_000);
        let mut leaders = 0;
        sim.for_each_state(&mut |s, c| {
            if s {
                leaders += c;
            }
        });
        assert_eq!(leaders, sim.leaders());
    }

    /// Approximate-multinomial policy forcing batches at test populations.
    fn approx_policy() -> BatchPolicy {
        BatchPolicy::ApproximateMultinomial {
            shift: 6,
            min_population: 64,
        }
    }

    #[test]
    fn approx_batched_conserves_population_and_outputs() {
        let mut sim = UrnSim::new(Slow, 10_000, 3);
        sim.steps_batched(200_000, &approx_policy());
        assert_eq!(sim.interactions(), 200_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        assert_eq!(sim.output_counts().iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn approx_batched_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = UrnSim::new(Slow, 20_000, seed);
            sim.steps_batched(100_000, &approx_policy());
            (sim.nonzero_counts(), sim.interactions())
        };
        assert_eq!(run(41), run(41));
        // Different seeds are different samples of the process (the Slow
        // leader count after 5n interactions is spread over dozens of
        // values, so a collision would be an astronomical fluke).
        assert_ne!(run(41).0, run(42).0);
    }

    #[test]
    fn approx_batched_tracks_sequential_trajectory() {
        // Same x(t) = 1/(1+t) marginal check as the exact engine's: at
        // shift 6 the per-block bias (≈ 2^-6 per block) is far inside the
        // 20% tolerance band, which is exactly the regime the legacy
        // engine's gates accepted.
        let n = 1u64 << 14;
        let mut sim = UrnSim::new(Slow, n, 9);
        for k in 1..=6u64 {
            sim.steps_batched(2 * n, &approx_policy());
            let t = 2.0 * k as f64;
            let expected = n as f64 / (1.0 + t);
            let rel = (sim.leaders() as f64 - expected).abs() / expected;
            assert!(rel < 0.2, "t={t}: {} vs {expected:.0}", sim.leaders());
        }
    }

    #[test]
    fn approx_batched_stops_at_block_granularity() {
        // Stops still work under the approximate mode, but with no trace to
        // rewind they land on a block boundary (or on a per-step remainder).
        let n = 4096u64;
        let mut sim = UrnSim::new(Slow, n, 77);
        let res = run_until_stable_with(&mut sim, &approx_policy(), 1 << 40);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
        assert_eq!(res.interactions, sim.interactions());
    }

    #[test]
    #[should_panic(expected = "no sequential trace")]
    fn traced_rejects_approximate_policy() {
        let mut sim = UrnSim::new(Slow, 10_000, 3);
        let mut trace = Vec::new();
        sim.steps_batched_traced(1_000, &approx_policy(), &mut trace);
    }
}
