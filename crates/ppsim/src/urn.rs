//! Count-based ("urn") simulator.
//!
//! Agents in a population protocol are anonymous, so a configuration is fully
//! described by the multiset of states — an urn. Sampling an ordered pair of
//! distinct agents is equivalent to:
//!
//! 1. draw a state `r` with probability `count[r] / n` (the responder),
//! 2. remove one ball of state `r`,
//! 3. draw a state `i` with probability `count[i] / (n − 1)` (the initiator),
//! 4. apply `δ`, put the two resulting balls back.
//!
//! This gives a process statistically identical to [`crate::AgentSim`] while
//! storing only `|states|` counters, so the population size is limited only
//! by `u64`. Each interaction costs O(log |states|) through a Fenwick tree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::fenwick::Fenwick;
use crate::protocol::{EnumerableProtocol, Output, Simulator, NUM_OUTPUTS};

/// Urn simulator over an [`EnumerableProtocol`].
pub struct UrnSim<P: EnumerableProtocol> {
    protocol: P,
    /// Weighted sampling structure; weight of slot `id` = multiplicity of the
    /// state with that id.
    urn: Fenwick,
    /// Cached decode table: `state_of[id]` = the state with id `id`.
    state_of: Vec<P::State>,
    /// Cached output per state id.
    output_of: Vec<Output>,
    population: u64,
    rng: SmallRng,
    interactions: u64,
    output_counts: [u64; NUM_OUTPUTS],
}

impl<P: EnumerableProtocol> UrnSim<P> {
    /// Create an urn with `n` agents in the initial state.
    ///
    /// # Panics
    /// Panics if `n < 2` or if the protocol's encode/decode pair is not
    /// inverse on the initial state.
    pub fn new(protocol: P, n: u64, seed: u64) -> Self {
        assert!(n >= 2, "population must contain at least two agents");
        let s = protocol.num_states();
        let mut state_of = Vec::with_capacity(s);
        let mut output_of = Vec::with_capacity(s);
        for id in 0..s {
            let st = protocol.state_from_id(id);
            debug_assert_eq!(
                protocol.state_id(st),
                id,
                "state_id/state_from_id must be mutually inverse"
            );
            output_of.push(protocol.output(st));
            state_of.push(st);
        }
        let init = protocol.initial_state();
        let init_id = protocol.state_id(init);
        assert!(init_id < s, "initial state id out of range");
        let mut urn = Fenwick::new(s);
        urn.add(init_id, n as i64);
        let mut output_counts = [0u64; NUM_OUTPUTS];
        output_counts[protocol.output(init) as usize] = n;
        Self {
            protocol,
            urn,
            state_of,
            output_of,
            population: n,
            rng: SmallRng::seed_from_u64(seed),
            interactions: 0,
            output_counts,
        }
    }

    /// Create an urn with an explicit initial configuration given as
    /// (state, multiplicity) pairs. See [`crate::AgentSim::with_states`] for
    /// the rationale.
    ///
    /// # Panics
    /// Panics if the total population is below two.
    pub fn with_counts(protocol: P, counts: &[(P::State, u64)], seed: u64) -> Self {
        let n: u64 = counts.iter().map(|&(_, c)| c).sum();
        let mut sim = Self::new(protocol, n.max(2), seed);
        assert!(n >= 2, "population must contain at least two agents");
        // Rebuild the urn from the explicit configuration.
        let init_id = sim.protocol.state_id(sim.protocol.initial_state());
        sim.urn.add(init_id, -(n as i64));
        sim.output_counts = [0; NUM_OUTPUTS];
        for &(s, c) in counts {
            let id = sim.protocol.state_id(s);
            sim.urn.add(id, c as i64);
            sim.output_counts[sim.protocol.output(s) as usize] += c;
        }
        sim
    }

    /// Multiplicity of the state with id `id`.
    pub fn count_of_id(&self, id: usize) -> u64 {
        self.urn.get(id)
    }

    /// The protocol instance driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All (state, multiplicity) pairs with non-zero multiplicity.
    pub fn nonzero_counts(&self) -> Vec<(P::State, u64)> {
        (0..self.state_of.len())
            .filter_map(|id| {
                let c = self.urn.get(id);
                (c > 0).then(|| (self.state_of[id], c))
            })
            .collect()
    }
}

impl<P: EnumerableProtocol> Simulator for UrnSim<P> {
    type State = P::State;

    fn population(&self) -> u64 {
        self.population
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    #[inline]
    fn step(&mut self) {
        // Draw responder, remove it from the urn, draw initiator from the
        // remaining n-1 balls, then reinsert the post-transition states.
        let r_id = self.urn.find(self.rng.gen_range(0..self.population));
        self.urn.add(r_id, -1);
        let i_id = self.urn.find(self.rng.gen_range(0..self.population - 1));
        self.urn.add(i_id, -1);

        let (r_new, i_new) = self
            .protocol
            .transition(self.state_of[r_id], self.state_of[i_id]);
        let rn_id = self.protocol.state_id(r_new);
        let in_id = self.protocol.state_id(i_new);
        self.urn.add(rn_id, 1);
        self.urn.add(in_id, 1);
        self.interactions += 1;

        if rn_id != r_id {
            self.output_counts[self.output_of[r_id] as usize] -= 1;
            self.output_counts[self.output_of[rn_id] as usize] += 1;
        }
        if in_id != i_id {
            self.output_counts[self.output_of[i_id] as usize] -= 1;
            self.output_counts[self.output_of[in_id] as usize] += 1;
        }
    }

    fn output_counts(&self) -> [u64; NUM_OUTPUTS] {
        self.output_counts
    }

    fn for_each_state(&self, f: &mut dyn FnMut(Self::State, u64)) {
        for id in 0..self.state_of.len() {
            let c = self.urn.get(id);
            if c > 0 {
                f(self.state_of[id], c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::runner::run_until_stable;

    /// The slow leader-election protocol with a dense 2-state encoding.
    struct Slow;
    impl Protocol for Slow {
        type State = bool;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, r: bool, i: bool) -> (bool, bool) {
            if r && i {
                (true, false)
            } else {
                (r, i)
            }
        }
        fn output(&self, s: bool) -> Output {
            if s {
                Output::Leader
            } else {
                Output::Follower
            }
        }
    }
    impl EnumerableProtocol for Slow {
        fn num_states(&self) -> usize {
            2
        }
        fn state_id(&self, s: bool) -> usize {
            s as usize
        }
        fn state_from_id(&self, id: usize) -> bool {
            id == 1
        }
    }

    #[test]
    fn urn_conserves_population() {
        let mut sim = UrnSim::new(Slow, 1000, 3);
        sim.steps(20_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn urn_slow_converges() {
        let mut sim = UrnSim::new(Slow, 256, 17);
        let res = run_until_stable(&mut sim, 10_000_000);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn urn_handles_large_population() {
        // A population that would need 1 GiB in an agent array is trivial
        // for the urn: just big counters.
        let mut sim = UrnSim::new(Slow, 1 << 30, 5);
        sim.steps(10_000);
        assert_eq!(sim.population(), 1 << 30);
        let leaders = sim.leaders();
        assert!(leaders < 1 << 30 && leaders > (1 << 30) - 10_001);
    }

    #[test]
    fn urn_and_agent_sim_agree_in_distribution() {
        // Compare mean convergence parallel time of the slow protocol on
        // n = 64 across engines; they simulate the same Markov chain so the
        // means must be statistically indistinguishable. Slow protocol
        // converges in ~n parallel time, tight concentration at this scale.
        use crate::agent_sim::AgentSim;
        let trials = 40;
        let mut urn_times = Vec::new();
        let mut arr_times = Vec::new();
        for t in 0..trials {
            let mut u = UrnSim::new(Slow, 64, 1000 + t);
            let r = run_until_stable(&mut u, 10_000_000);
            urn_times.push(r.parallel_time);
            let mut a = AgentSim::new(Slow, 64, 2000 + t);
            let r = run_until_stable(&mut a, 10_000_000);
            arr_times.push(r.parallel_time);
        }
        let mu: f64 = urn_times.iter().sum::<f64>() / trials as f64;
        let ma: f64 = arr_times.iter().sum::<f64>() / trials as f64;
        let rel = (mu - ma).abs() / ma;
        assert!(rel < 0.35, "urn {mu:.1} vs agent {ma:.1}");
    }

    #[test]
    fn output_counts_track_urn_contents() {
        let mut sim = UrnSim::new(Slow, 500, 23);
        sim.steps(5_000);
        let mut leaders = 0;
        sim.for_each_state(&mut |s, c| {
            if s {
                leaders += c;
            }
        });
        assert_eq!(leaders, sim.leaders());
    }
}
