//! Count-based ("urn") simulator.
//!
//! Agents in a population protocol are anonymous, so a configuration is fully
//! described by the multiset of states — an urn. Sampling an ordered pair of
//! distinct agents is equivalent to:
//!
//! 1. draw a state `r` with probability `count[r] / n` (the responder),
//! 2. remove one ball of state `r`,
//! 3. draw a state `i` with probability `count[i] / (n − 1)` (the initiator),
//! 4. apply `δ`, put the two resulting balls back.
//!
//! This gives a process statistically identical to [`crate::AgentSim`] while
//! storing only `|states|` counters, so the population size is limited only
//! by `u64`. Each interaction costs O(log |states|) through a Fenwick tree.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::batch::{draw_without_replacement, hypergeometric, BatchPolicy};
use crate::fenwick::Fenwick;
use crate::protocol::{EnumerableProtocol, Output, Simulator, NUM_OUTPUTS};

/// Reusable buffers for [`UrnSim::step_batch`], kept across batches so the
/// batched path never allocates in steady state.
#[derive(Clone, Debug, Default)]
struct BatchScratch {
    /// Ids of states with non-zero multiplicity at the batch snapshot.
    occupied: Vec<usize>,
    /// Multiplicities of `occupied` (parallel array), consumed as agents are
    /// drawn out of the snapshot.
    pool: Vec<u64>,
    /// Responder draw counts per occupied slot.
    responders: Vec<u64>,
    /// Initiator draw counts per occupied slot.
    initiators: Vec<u64>,
    /// Compact (occupied slot, remaining count) list of initiator mass,
    /// consumed during pairing. At most `batch` entries, so pairing never
    /// scans the full occupied set per row.
    init_nz: Vec<(u32, u64)>,
    /// Net multiplicity change per state id accumulated over the batch
    /// (dense, zeroed after each apply).
    delta: Vec<i64>,
    /// State ids with possibly non-zero `delta` (may contain duplicates).
    touched: Vec<usize>,
}

/// Urn simulator over an [`EnumerableProtocol`].
pub struct UrnSim<P: EnumerableProtocol> {
    protocol: P,
    /// Weighted sampling structure; weight of slot `id` = multiplicity of the
    /// state with that id.
    urn: Fenwick,
    /// Dense mirror of the urn weights: `counts[id]` = multiplicity of state
    /// `id`. Kept in lock-step with `urn`; the batched path reads and
    /// updates it directly and replays net changes into the Fenwick tree.
    counts: Vec<u64>,
    /// Ids of states with non-zero multiplicity, in insertion order
    /// (deterministic, not sorted). Maintained incrementally so the batched
    /// path's per-batch overhead is O(occupied), not O(|states|).
    occupied_ids: Vec<usize>,
    /// Position of each id in `occupied_ids` (`u32::MAX` when absent).
    occupied_pos: Vec<u32>,
    /// Cached decode table: `state_of[id]` = the state with id `id`.
    state_of: Vec<P::State>,
    /// Cached output per state id.
    output_of: Vec<Output>,
    population: u64,
    rng: SmallRng,
    interactions: u64,
    output_counts: [u64; NUM_OUTPUTS],
    scratch: BatchScratch,
}

impl<P: EnumerableProtocol> UrnSim<P> {
    /// Create an urn with `n` agents in the initial state.
    ///
    /// # Panics
    /// Panics if `n < 2` or if the protocol's encode/decode pair is not
    /// inverse on the initial state.
    pub fn new(protocol: P, n: u64, seed: u64) -> Self {
        assert!(n >= 2, "population must contain at least two agents");
        let s = protocol.num_states();
        let mut state_of = Vec::with_capacity(s);
        let mut output_of = Vec::with_capacity(s);
        for id in 0..s {
            let st = protocol.state_from_id(id);
            debug_assert_eq!(
                protocol.state_id(st),
                id,
                "state_id/state_from_id must be mutually inverse"
            );
            output_of.push(protocol.output(st));
            state_of.push(st);
        }
        let init = protocol.initial_state();
        let init_id = protocol.state_id(init);
        assert!(init_id < s, "initial state id out of range");
        let mut urn = Fenwick::new(s);
        urn.add(init_id, n as i64);
        let mut counts = vec![0u64; s];
        counts[init_id] = n;
        let mut occupied_pos = vec![u32::MAX; s];
        occupied_pos[init_id] = 0;
        let mut output_counts = [0u64; NUM_OUTPUTS];
        output_counts[protocol.output(init) as usize] = n;
        Self {
            protocol,
            urn,
            counts,
            occupied_ids: vec![init_id],
            occupied_pos,
            state_of,
            output_of,
            population: n,
            rng: SmallRng::seed_from_u64(seed),
            interactions: 0,
            output_counts,
            scratch: BatchScratch::default(),
        }
    }

    /// Apply a multiplicity change to state `id` in both count structures
    /// and the occupancy index (but not the Fenwick tree — callers pair
    /// this with `urn.add`).
    #[inline]
    fn add_count(&mut self, id: usize, delta: i64) {
        let old = self.counts[id];
        let new = (old as i64 + delta) as u64;
        self.counts[id] = new;
        if old == 0 && new > 0 {
            self.occupied_pos[id] = self.occupied_ids.len() as u32;
            self.occupied_ids.push(id);
        } else if old > 0 && new == 0 {
            let pos = self.occupied_pos[id] as usize;
            self.occupied_ids.swap_remove(pos);
            self.occupied_pos[id] = u32::MAX;
            if pos < self.occupied_ids.len() {
                self.occupied_pos[self.occupied_ids[pos]] = pos as u32;
            }
        }
    }

    /// Create an urn with an explicit initial configuration given as
    /// (state, multiplicity) pairs. See [`crate::AgentSim::with_states`] for
    /// the rationale.
    ///
    /// # Panics
    /// Panics if the total population is below two.
    pub fn with_counts(protocol: P, counts: &[(P::State, u64)], seed: u64) -> Self {
        let n: u64 = counts.iter().map(|&(_, c)| c).sum();
        let mut sim = Self::new(protocol, n.max(2), seed);
        assert!(n >= 2, "population must contain at least two agents");
        // Rebuild the urn from the explicit configuration.
        let init_id = sim.protocol.state_id(sim.protocol.initial_state());
        sim.urn.add(init_id, -(n as i64));
        sim.add_count(init_id, -(n as i64));
        sim.output_counts = [0; NUM_OUTPUTS];
        for &(s, c) in counts {
            let id = sim.protocol.state_id(s);
            sim.urn.add(id, c as i64);
            sim.add_count(id, c as i64);
            sim.output_counts[sim.protocol.output(s) as usize] += c;
        }
        sim
    }

    /// Multiplicity of the state with id `id`.
    pub fn count_of_id(&self, id: usize) -> u64 {
        self.counts[id]
    }

    /// The protocol instance driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// All (state, multiplicity) pairs with non-zero multiplicity.
    pub fn nonzero_counts(&self) -> Vec<(P::State, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(id, &c)| (self.state_of[id], c))
            .collect()
    }

    /// Execute `k` interactions, sampling whole batches at once where
    /// `policy` allows it.
    ///
    /// Equivalent in distribution (up to the O(batch/n) within-batch
    /// approximation documented in [`crate::batch`]) to `k` calls of
    /// [`Simulator::step`], but orders of magnitude faster on large
    /// populations: a batch of `b` interactions is sampled as one multiset of
    /// (responder, initiator) state pairs and the transition is applied per
    /// pair-bucket in bulk. Falls back to per-step sampling whenever the
    /// policy's batch size is 1 (per-step policy, small population) or fewer
    /// than 4 interactions remain to be scheduled in a block.
    ///
    /// Deterministic: a fixed (seed, `k`, `policy`) triple always produces
    /// the same configuration. Note the RNG consumption differs from the
    /// sequential path's, so batched and per-step runs of the same seed are
    /// different (equally valid) samples of the process.
    pub fn steps_batched(&mut self, k: u64, policy: &BatchPolicy) {
        let mut left = k;
        while left > 0 {
            let b = policy.batch_size(self.population).min(left);
            // Batches need 2b ≤ n distinct agents; tiny remainders are
            // cheaper sequentially than through the batch machinery. The
            // half-check divides rather than doubling so hand-built
            // policies can never wrap it.
            if b < 4 || b > self.population / 2 {
                self.step();
                left -= 1;
                continue;
            }
            self.step_batch(b);
            left -= b;
        }
    }

    /// Sample and apply one batch of exactly `b` interactions (`2b ≤ n`).
    ///
    /// 1. Snapshot the occupied states.
    /// 2. Draw `b` responders, then `b` initiators, without replacement.
    /// 3. Pair the two halves uniformly: for each responder state, distribute
    ///    its draws over the remaining initiator multiset.
    /// 4. Apply `δ` once per (responder, initiator) bucket and replay the net
    ///    multiplicity changes into the Fenwick tree.
    fn step_batch(&mut self, b: u64) {
        debug_assert!(b >= 1 && 2 * b <= self.population);
        // Detach the scratch buffers so the borrow checker lets the apply
        // phase call back into `self`; Vec capacities survive the round trip.
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.delta.resize(self.counts.len(), 0);

        // 1. Snapshot occupied states into parallel (id, multiplicity)
        //    arrays — O(occupied), thanks to the incremental occupancy index.
        scratch.occupied.clear();
        scratch.pool.clear();
        for &id in &self.occupied_ids {
            scratch.occupied.push(id);
            scratch.pool.push(self.counts[id]);
        }

        // 2. Roles: b responders, then b initiators from the rest. The
        //    without-replacement draws make the batch an exchangeable block
        //    of 2b distinct agents.
        let mut pool_total = self.population;
        draw_without_replacement(
            &mut self.rng,
            b,
            &mut scratch.pool,
            &mut pool_total,
            &mut scratch.responders,
        );
        draw_without_replacement(
            &mut self.rng,
            b,
            &mut scratch.pool,
            &mut pool_total,
            &mut scratch.initiators,
        );
        for (j, &id) in scratch.occupied.iter().enumerate() {
            let removed = scratch.responders[j] + scratch.initiators[j];
            if removed > 0 {
                scratch.delta[id] -= removed as i64;
                scratch.touched.push(id);
            }
        }

        // 3 + 4. Uniform pairing row by row, applying δ per bucket. The
        // initiator mass lives in a compact (slot, count) list — at most b
        // entries, lazily compacted as slots exhaust — so a row's
        // conditional chain only visits slots that can still supply
        // partners.
        scratch.init_nz.clear();
        for (jj, &c) in scratch.initiators.iter().enumerate() {
            if c > 0 {
                scratch.init_nz.push((jj as u32, c));
            }
        }
        let mut initiators_left = b;
        for j in 0..scratch.occupied.len() {
            let r_draws = scratch.responders[j];
            if r_draws == 0 {
                continue;
            }
            let r_id = scratch.occupied[j];
            let r_state = self.state_of[r_id];
            // Conditional multivariate-hypergeometric chain over the
            // remaining initiator multiset (same scheme and clamps as
            // `draw_without_replacement`, on the compact list).
            let mut draws_left = r_draws;
            let mut total_left = initiators_left;
            let mut idx = 0usize;
            while draws_left > 0 {
                debug_assert!(idx < scratch.init_nz.len());
                let (jj, c) = scratch.init_nz[idx];
                if c == 0 {
                    // Exhausted by an earlier row: drop it (swap_remove
                    // pulls in a not-yet-visited entry, so don't advance).
                    scratch.init_nz.swap_remove(idx);
                    continue;
                }
                let m = if total_left == c {
                    draws_left
                } else {
                    // Overflow-safe form of max(0, draws + c − total); see
                    // `draw_without_replacement`.
                    let lo = draws_left.saturating_sub(total_left - c);
                    let hi = c.min(draws_left);
                    hypergeometric(&mut self.rng, total_left, c, draws_left).clamp(lo, hi)
                };
                total_left -= c;
                idx += 1;
                if m == 0 {
                    continue;
                }
                scratch.init_nz[idx - 1].1 = c - m;
                draws_left -= m;

                let i_id = scratch.occupied[jj as usize];
                let (r_new, i_new) = self.protocol.transition(r_state, self.state_of[i_id]);
                let rn_id = self.protocol.state_id(r_new);
                let in_id = self.protocol.state_id(i_new);
                scratch.delta[rn_id] += m as i64;
                scratch.delta[in_id] += m as i64;
                scratch.touched.push(rn_id);
                scratch.touched.push(in_id);
                if rn_id != r_id {
                    self.output_counts[self.output_of[r_id] as usize] -= m;
                    self.output_counts[self.output_of[rn_id] as usize] += m;
                }
                if in_id != i_id {
                    self.output_counts[self.output_of[i_id] as usize] -= m;
                    self.output_counts[self.output_of[in_id] as usize] += m;
                }
            }
            initiators_left -= r_draws;
        }
        debug_assert_eq!(initiators_left, 0);
        self.interactions += b;

        // Replay net changes into counts and the Fenwick tree. `touched` may
        // hold duplicates; zeroing `delta` on apply makes repeats no-ops.
        for &id in &scratch.touched {
            let d = scratch.delta[id];
            if d != 0 {
                scratch.delta[id] = 0;
                self.add_count(id, d);
                self.urn.add(id, d);
            }
        }
        scratch.touched.clear();
        self.scratch = scratch;
        debug_assert_eq!(self.urn.total(), self.population);
    }
}

impl<P: EnumerableProtocol> Simulator for UrnSim<P> {
    type State = P::State;

    fn population(&self) -> u64 {
        self.population
    }

    fn interactions(&self) -> u64 {
        self.interactions
    }

    #[inline]
    fn step(&mut self) {
        // Draw responder, remove it from the urn, draw initiator from the
        // remaining n-1 balls, then reinsert the post-transition states.
        let r_id = self.urn.find(self.rng.gen_range(0..self.population));
        self.urn.add(r_id, -1);
        self.add_count(r_id, -1);
        let i_id = self.urn.find(self.rng.gen_range(0..self.population - 1));
        self.urn.add(i_id, -1);
        self.add_count(i_id, -1);

        let (r_new, i_new) = self
            .protocol
            .transition(self.state_of[r_id], self.state_of[i_id]);
        let rn_id = self.protocol.state_id(r_new);
        let in_id = self.protocol.state_id(i_new);
        self.urn.add(rn_id, 1);
        self.add_count(rn_id, 1);
        self.urn.add(in_id, 1);
        self.add_count(in_id, 1);
        self.interactions += 1;

        if rn_id != r_id {
            self.output_counts[self.output_of[r_id] as usize] -= 1;
            self.output_counts[self.output_of[rn_id] as usize] += 1;
        }
        if in_id != i_id {
            self.output_counts[self.output_of[i_id] as usize] -= 1;
            self.output_counts[self.output_of[in_id] as usize] += 1;
        }
    }

    /// Batched bulk execution: delegates to [`UrnSim::steps_batched`].
    fn steps_bulk(&mut self, k: u64, policy: &BatchPolicy) {
        self.steps_batched(k, policy);
    }

    fn output_counts(&self) -> [u64; NUM_OUTPUTS] {
        self.output_counts
    }

    fn current_epoch(&self) -> Option<u32> {
        let mut best = None;
        for (id, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                let e = self.protocol.epoch_of(self.state_of[id]);
                if e > best {
                    best = e;
                }
            }
        }
        best
    }

    fn for_each_state(&self, f: &mut dyn FnMut(Self::State, u64)) {
        for (id, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                f(self.state_of[id], c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::runner::{run_until_stable, run_until_stable_with};

    /// The slow leader-election protocol with a dense 2-state encoding.
    struct Slow;
    impl Protocol for Slow {
        type State = bool;
        fn initial_state(&self) -> bool {
            true
        }
        fn transition(&self, r: bool, i: bool) -> (bool, bool) {
            if r && i {
                (true, false)
            } else {
                (r, i)
            }
        }
        fn output(&self, s: bool) -> Output {
            if s {
                Output::Leader
            } else {
                Output::Follower
            }
        }
    }
    impl EnumerableProtocol for Slow {
        fn num_states(&self) -> usize {
            2
        }
        fn state_id(&self, s: bool) -> usize {
            s as usize
        }
        fn state_from_id(&self, id: usize) -> bool {
            id == 1
        }
    }

    #[test]
    fn urn_conserves_population() {
        let mut sim = UrnSim::new(Slow, 1000, 3);
        sim.steps(20_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn urn_slow_converges() {
        let mut sim = UrnSim::new(Slow, 256, 17);
        let res = run_until_stable(&mut sim, 10_000_000);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn urn_handles_large_population() {
        // A population that would need 1 GiB in an agent array is trivial
        // for the urn: just big counters.
        let mut sim = UrnSim::new(Slow, 1 << 30, 5);
        sim.steps(10_000);
        assert_eq!(sim.population(), 1 << 30);
        let leaders = sim.leaders();
        assert!(leaders < 1 << 30 && leaders > (1 << 30) - 10_001);
    }

    #[test]
    fn urn_and_agent_sim_agree_in_distribution() {
        // Compare mean convergence parallel time of the slow protocol on
        // n = 64 across engines; they simulate the same Markov chain so the
        // means must be statistically indistinguishable. Slow protocol
        // converges in ~n parallel time, tight concentration at this scale.
        use crate::agent_sim::AgentSim;
        let trials = 40;
        let mut urn_times = Vec::new();
        let mut arr_times = Vec::new();
        for t in 0..trials {
            let mut u = UrnSim::new(Slow, 64, 1000 + t);
            let r = run_until_stable(&mut u, 10_000_000);
            urn_times.push(r.parallel_time);
            let mut a = AgentSim::new(Slow, 64, 2000 + t);
            let r = run_until_stable(&mut a, 10_000_000);
            arr_times.push(r.parallel_time);
        }
        let mu: f64 = urn_times.iter().sum::<f64>() / trials as f64;
        let ma: f64 = arr_times.iter().sum::<f64>() / trials as f64;
        let rel = (mu - ma).abs() / ma;
        assert!(rel < 0.35, "urn {mu:.1} vs agent {ma:.1}");
    }

    /// Policy forcing batches even at unit-test populations.
    fn test_policy() -> BatchPolicy {
        BatchPolicy::Adaptive {
            shift: 4,
            min_population: 64,
        }
    }

    #[test]
    fn batched_conserves_population_and_outputs() {
        let mut sim = UrnSim::new(Slow, 10_000, 3);
        sim.steps_batched(200_000, &test_policy());
        assert_eq!(sim.interactions(), 200_000);
        let total: u64 = sim.nonzero_counts().iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 10_000);
        let mut leaders = 0;
        sim.for_each_state(&mut |s, c| {
            if s {
                leaders += c;
            }
        });
        assert_eq!(leaders, sim.leaders());
        assert_eq!(sim.output_counts().iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn batched_slow_converges_to_one_leader() {
        let mut sim = UrnSim::new(Slow, 4096, 17);
        let res = run_until_stable_with(&mut sim, &test_policy(), 1 << 32);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
        // Stops on a batch boundary: with constant population the batch is
        // constant, so the stopping time is a multiple of it.
        assert_eq!(res.interactions % test_policy().batch_size(4096), 0);
    }

    #[test]
    fn batched_tracks_sequential_trajectory() {
        // Slow protocol marginal x(t) = 1/(1+t) — the batched path must
        // follow it just like the sequential one (test tolerance is loose
        // enough for both sampling noise and the O(batch/n) bias).
        let n = 1u64 << 14;
        let mut sim = UrnSim::new(Slow, n, 9);
        for k in 1..=6u64 {
            sim.steps_batched(2 * n, &test_policy());
            let t = 2.0 * k as f64;
            let expected = n as f64 / (1.0 + t);
            let rel = (sim.leaders() as f64 - expected).abs() / expected;
            assert!(rel < 0.2, "t={t}: {} vs {expected:.0}", sim.leaders());
        }
    }

    #[test]
    fn batched_at_exactly_min_population_batches() {
        // n = 4096 = DEFAULT_MIN_POPULATION: the boundary is "strictly
        // below", so at exactly 4096 the default policy batches (64 per
        // block) and stopping times are quantised to batch boundaries.
        let n = 4096u64;
        let policy = BatchPolicy::adaptive();
        assert_eq!(policy.batch_size(n), 64);
        let mut sim = UrnSim::new(Slow, n, 77);
        let res = run_until_stable_with(&mut sim, &policy, 1 << 40);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
        assert_eq!(res.interactions % 64, 0, "not batch-aligned");
    }

    #[test]
    fn batch_size_one_consumes_rng_like_per_step() {
        // An adaptive policy whose batch degenerates to 1 (huge shift)
        // must take the exact sequential path: bit-identical
        // configurations, not just statistical agreement.
        let policy = BatchPolicy::Adaptive {
            shift: 63,
            min_population: 2,
        };
        assert_eq!(policy.batch_size(4096), 1);
        let mut batched = UrnSim::new(Slow, 4096, 23);
        let mut sequential = UrnSim::new(Slow, 4096, 23);
        batched.steps_batched(10_000, &policy);
        sequential.steps(10_000);
        assert_eq!(batched.nonzero_counts(), sequential.nonzero_counts());
        assert_eq!(batched.output_counts(), sequential.output_counts());
        assert_eq!(batched.interactions(), sequential.interactions());
    }

    #[test]
    fn batched_falls_back_to_per_step_below_min_population() {
        // Identical RNG consumption to the sequential path when the policy
        // says "don't batch": the configurations must match bit for bit.
        let policy = BatchPolicy::Adaptive {
            shift: 4,
            min_population: 1 << 20,
        };
        let mut batched = UrnSim::new(Slow, 500, 23);
        let mut sequential = UrnSim::new(Slow, 500, 23);
        batched.steps_batched(5_000, &policy);
        sequential.steps(5_000);
        assert_eq!(batched.nonzero_counts(), sequential.nonzero_counts());
        assert_eq!(batched.output_counts(), sequential.output_counts());
    }

    #[test]
    fn batched_heterogeneous_start() {
        let counts = [(true, 64u64), (false, 4032)];
        let mut sim = UrnSim::with_counts(Slow, &counts, 31);
        assert_eq!(sim.leaders(), 64);
        let res = run_until_stable_with(&mut sim, &test_policy(), 1 << 32);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn output_counts_track_urn_contents() {
        let mut sim = UrnSim::new(Slow, 500, 23);
        sim.steps(5_000);
        let mut leaders = 0;
        sim.for_each_state(&mut |s, c| {
            if s {
                leaders += c;
            }
        });
        assert_eq!(leaders, sim.leaders());
    }
}
