//! Minimal fixed-width table printer for the benchmark harness. The bench
//! targets print paper-style rows; this keeps their output aligned and
//! greppable without pulling in a formatting dependency.

/// A table under construction.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are truncated.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 significant-ish decimals, trimming noise.
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 1000.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "time"]);
        t.row(["1024", "3.5"]);
        t.row(["65536", "12.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("1024"));
        assert!(lines[3].contains("65536"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn long_rows_are_truncated() {
        let mut t = Table::new(["a"]);
        t.row(["1", "2", "3"]);
        let s = t.render();
        assert!(!s.contains('2'));
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.4), "1234");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1.2345), "1.234"); // banker-ish rounding not required
        assert_eq!(fnum(f64::INFINITY), "inf");
    }
}
