//! Fenwick (binary indexed) tree over `u64` weights with prefix-sum search.
//!
//! Used by [`crate::UrnSim`] to sample a state proportionally to its
//! multiplicity in O(log S) and to update multiplicities in O(log S).

/// Fenwick tree storing non-negative integer weights.
#[derive(Clone, Debug)]
pub struct Fenwick {
    /// 1-based partial sums; `tree[0]` unused.
    tree: Vec<u64>,
    len: usize,
    /// Largest power of two ≤ len, cached for the descend search.
    top_bit: usize,
    total: u64,
}

impl Fenwick {
    /// An all-zero tree over `len` slots.
    pub fn new(len: usize) -> Self {
        let top_bit = if len == 0 {
            0
        } else {
            usize::BITS as usize - 1 - len.leading_zeros() as usize
        };
        Self {
            tree: vec![0; len + 1],
            len,
            top_bit: 1 << top_bit,
            total: 0,
        }
    }

    /// Build from initial weights in O(len).
    ///
    /// Standard linear construction: node `j` is finalised once all children
    /// (which have smaller indices) have been folded in, then propagates its
    /// subtree sum to its parent exactly once.
    pub fn from_weights(weights: &[u64]) -> Self {
        let mut f = Self::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            let j = i + 1;
            f.tree[j] += w;
            let parent = j + (j & j.wrapping_neg());
            if parent <= f.len {
                f.tree[parent] += f.tree[j];
            }
            f.total += w;
        }
        debug_assert_eq!(f.prefix_sum(f.len), f.total);
        f
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree has no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sum of all weights.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Add `delta` to slot `i` (0-based). `delta` may be negative as long as
    /// the resulting weight stays non-negative; that invariant is the
    /// caller's responsibility and is checked in debug builds.
    pub fn add(&mut self, i: usize, delta: i64) {
        debug_assert!(i < self.len);
        self.total = (self.total as i64 + delta) as u64;
        let mut j = i + 1;
        while j <= self.len {
            self.tree[j] = (self.tree[j] as i64 + delta) as u64;
            j += j & j.wrapping_neg();
        }
    }

    /// Sum of weights in slots `0..i` (exclusive upper bound, 0-based).
    pub fn prefix_sum(&self, i: usize) -> u64 {
        let mut j = i.min(self.len);
        let mut s = 0;
        while j > 0 {
            s += self.tree[j];
            j &= j - 1;
        }
        s
    }

    /// Weight of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.prefix_sum(i + 1) - self.prefix_sum(i)
    }

    /// Smallest index `i` such that `prefix_sum(i + 1) > target`, i.e. the
    /// slot owning the `target`-th unit of mass (0-based). `target` must be
    /// `< total()`.
    ///
    /// This is the sampling primitive: with `target` uniform in
    /// `0..total()`, the returned slot is distributed proportionally to the
    /// weights.
    pub fn find(&self, mut target: u64) -> usize {
        debug_assert!(
            target < self.total,
            "target {} >= total {}",
            target,
            self.total
        );
        let mut pos = 0usize;
        let mut step = self.top_bit;
        while step > 0 {
            let next = pos + step;
            if next <= self.len && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // pos is the count of slots whose cumulative weight is <= original
        // target, i.e. the 0-based index of the owning slot.
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_tree() {
        let f = Fenwick::new(0);
        assert_eq!(f.total(), 0);
        assert!(f.is_empty());
    }

    #[test]
    fn add_and_get_roundtrip() {
        let mut f = Fenwick::new(10);
        f.add(3, 5);
        f.add(7, 2);
        assert_eq!(f.get(3), 5);
        assert_eq!(f.get(7), 2);
        assert_eq!(f.get(0), 0);
        assert_eq!(f.total(), 7);
    }

    #[test]
    fn prefix_sums() {
        let mut f = Fenwick::new(8);
        for i in 0..8 {
            f.add(i, (i as i64) + 1); // weights 1..=8
        }
        assert_eq!(f.prefix_sum(0), 0);
        assert_eq!(f.prefix_sum(1), 1);
        assert_eq!(f.prefix_sum(4), 1 + 2 + 3 + 4);
        assert_eq!(f.prefix_sum(8), 36);
        assert_eq!(f.total(), 36);
    }

    #[test]
    fn negative_delta() {
        let mut f = Fenwick::new(4);
        f.add(2, 10);
        f.add(2, -4);
        assert_eq!(f.get(2), 6);
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn find_maps_units_to_slots() {
        let mut f = Fenwick::new(5);
        f.add(1, 3); // units 0,1,2
        f.add(3, 2); // units 3,4
        assert_eq!(f.find(0), 1);
        assert_eq!(f.find(1), 1);
        assert_eq!(f.find(2), 1);
        assert_eq!(f.find(3), 3);
        assert_eq!(f.find(4), 3);
    }

    #[test]
    fn find_on_non_power_of_two_len() {
        let mut f = Fenwick::new(13);
        f.add(12, 1);
        assert_eq!(f.find(0), 12);
        f.add(0, 1);
        assert_eq!(f.find(0), 0);
        assert_eq!(f.find(1), 12);
    }

    #[test]
    fn from_weights_matches_incremental() {
        let weights: Vec<u64> = (0..37).map(|i| (i * 7 + 3) % 11).collect();
        let built = Fenwick::from_weights(&weights);
        let mut incr = Fenwick::new(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            incr.add(i, w as i64);
        }
        assert_eq!(built.total(), incr.total());
        for i in 0..weights.len() {
            assert_eq!(built.get(i), weights[i], "slot {i}");
            assert_eq!(built.prefix_sum(i), incr.prefix_sum(i), "prefix {i}");
        }
    }

    #[test]
    fn sampling_distribution_is_proportional() {
        let mut f = Fenwick::new(4);
        f.add(0, 1);
        f.add(1, 2);
        f.add(2, 3);
        f.add(3, 4);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut counts = [0u64; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[f.find(rng.gen_range(0..f.total()))] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = draws as f64 * (i + 1) as f64 / 10.0;
            let rel = (c as f64 - expected).abs() / expected;
            assert!(rel < 0.05, "slot {i}: {c} vs {expected}");
        }
    }

    #[test]
    fn find_after_removals() {
        let mut f = Fenwick::new(6);
        for i in 0..6 {
            f.add(i, 1);
        }
        f.add(0, -1);
        f.add(5, -1);
        // Remaining mass in slots 1..=4.
        assert_eq!(f.total(), 4);
        for t in 0..4 {
            let s = f.find(t);
            assert!((1..=4).contains(&s));
        }
    }
}
