//! The named project invariants and the engine that enforces them.
//!
//! Each rule guards one determinism or soundness contract of the
//! reproduction (see the README's "Static guarantees" table):
//!
//! | id                    | scope                          | invariant |
//! |-----------------------|--------------------------------|-----------|
//! | `hash-collections`    | `experiments`, `bench`         | d1: no `HashMap`/`HashSet` in artifact-producing crates unless routed through the `ppexp::sorted` adapter |
//! | `wall-clock-entropy`  | `ppsim`, `experiments` src     | d2: no `SystemTime`/`Instant`/`thread_rng`/`from_entropy` in anything that feeds an artifact |
//! | `float-format`        | `experiments` src (not json)   | d3: artifact floats only via the canonical `ppexp::json` emitter |
//! | `undocumented-unsafe` | whole workspace                | s1: every `unsafe` block / `unsafe impl` carries `// SAFETY:` |
//! | `cache-unwrap`        | `ppexp::cache`                 | s2: cache I/O never panics — corruption degrades to a clean miss |
//! | `pragma`              | whole workspace                | suppression pragmas must be well-formed and auditable |
//!
//! Suppression: `// ppcheck: allow(<rule>, "<reason>")` on the finding's
//! line or the line directly above. The reason is mandatory — a pragma is
//! an audit record, not an off switch — and suppressed findings still
//! appear in the JSONL report with their reasons.
//!
//! Test code (everything from the first `#[cfg(test)]` to end of file,
//! the workspace's universal layout) is exempt from the determinism rules
//! — tests may time things and unwrap freely — but **not** from
//! `undocumented-unsafe`: unsafe test code still documents itself.

use crate::lexer::{lex, Tok, TokKind};

/// Identity of a rule, stable across releases (pragmas reference these).
pub const RULE_IDS: [&str; 6] = [
    "hash-collections",
    "wall-clock-entropy",
    "float-format",
    "undocumented-unsafe",
    "cache-unwrap",
    "pragma",
];

/// The sorted-iteration adapter file: the one place in the artifact
/// crates where the hash collections may appear, because its whole job is
/// to hide their iteration order (d1's "routed through a sorted adapter").
const SORTED_ADAPTER: &str = "crates/experiments/src/sorted.rs";

/// The canonical float emitter: the one place artifact floats may be
/// formatted (d3).
const CANONICAL_EMITTER: &str = "crates/experiments/src/json.rs";

/// One finding of the pass.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Rule id (one of [`RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `Some(reason)` if an inline pragma suppressed this finding.
    pub suppressed: Option<String>,
}

/// A parsed `// ppcheck: allow(rule, "reason")` pragma.
struct Pragma {
    line: usize,
    rule: String,
    reason: String,
}

/// Scan one file's source as if it lived at workspace-relative `path`.
///
/// Returns **all** findings, suppressed ones included (marked): the
/// report layer decides what is fatal. Findings are ordered by line.
pub fn scan_source(path: &str, src: &str) -> Vec<Finding> {
    let path = path.replace('\\', "/");
    let toks = lex(src);
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let test_from = test_boundary(&code);
    let (pragmas, mut findings) = collect_pragmas(&path, &toks);

    check_hash_collections(&path, &code, test_from, &mut findings);
    check_wall_clock(&path, &code, test_from, &mut findings);
    check_float_format(&path, &code, test_from, &mut findings);
    check_undocumented_unsafe(&path, &toks, &code, &mut findings);
    check_cache_unwrap(&path, &code, test_from, &mut findings);

    for f in &mut findings {
        if f.rule == "pragma" {
            continue; // a malformed pragma cannot excuse itself
        }
        if let Some(p) = pragmas
            .iter()
            .find(|p| p.rule == f.rule && (p.line == f.line || p.line + 1 == f.line))
        {
            f.suppressed = Some(p.reason.clone());
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Line of the first `#[cfg(test)]` attribute, if any. Everything at or
/// after it is treated as test code: the workspace convention keeps test
/// modules at the end of each file, and the meta-test over the committed
/// tree keeps that convention honest.
fn test_boundary(code: &[&Tok]) -> usize {
    for w in code.windows(7) {
        let texts: Vec<&str> = w.iter().map(|t| t.text.as_str()).collect();
        if texts == ["#", "[", "cfg", "(", "test", ")", "]"] {
            return w[0].line;
        }
    }
    usize::MAX
}

/// Extract well-formed pragmas; malformed ones become `pragma` findings.
fn collect_pragmas(path: &str, toks: &[Tok]) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut findings = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let body = t.comment_body();
        let Some(rest) = body.strip_prefix("ppcheck:") else {
            continue;
        };
        match parse_allow(rest.trim()) {
            Ok((rule, reason)) => pragmas.push(Pragma {
                line: t.line,
                rule,
                reason,
            }),
            Err(why) => findings.push(Finding {
                rule: "pragma",
                path: path.to_string(),
                line: t.line,
                message: format!("malformed ppcheck pragma: {why}"),
                suppressed: None,
            }),
        }
    }
    (pragmas, findings)
}

/// Parse `allow(<rule>, "<reason>")`.
fn parse_allow(s: &str) -> Result<(String, String), String> {
    let inner = s
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.strip_suffix(')'))
        .ok_or("expected `allow(<rule>, \"<reason>\")`")?;
    let (rule, rest) = inner
        .split_once(',')
        .ok_or("expected a rule id and a quoted reason, separated by a comma")?;
    let rule = rule.trim();
    if !RULE_IDS.contains(&rule) {
        return Err(format!(
            "unknown rule '{rule}' (expected one of: {})",
            RULE_IDS.join(", ")
        ));
    }
    if rule == "pragma" {
        return Err("the pragma rule itself cannot be suppressed".into());
    }
    let reason = rest.trim();
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or("the reason must be a double-quoted string")?;
    if reason.trim().is_empty() {
        return Err("the reason must not be empty — pragmas are audit records".into());
    }
    Ok((rule.to_string(), reason.trim().to_string()))
}

fn in_crate(path: &str, prefix: &str) -> bool {
    path.starts_with(prefix)
}

/// d1 — `hash-collections`.
fn check_hash_collections(path: &str, code: &[&Tok], test_from: usize, out: &mut Vec<Finding>) {
    let artifact_crate = in_crate(path, "crates/experiments/") || in_crate(path, "crates/bench/");
    if !artifact_crate || path == SORTED_ADAPTER {
        return;
    }
    for t in code {
        if t.line >= test_from {
            break;
        }
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(Finding {
                rule: "hash-collections",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in an artifact-producing crate: iteration order depends on \
                     hasher state; use BTreeMap/BTreeSet or route iteration through \
                     ppexp::sorted",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

/// d2 — `wall-clock-entropy`.
fn check_wall_clock(path: &str, code: &[&Tok], test_from: usize, out: &mut Vec<Finding>) {
    if !(in_crate(path, "crates/ppsim/src/") || in_crate(path, "crates/experiments/src/")) {
        return;
    }
    const BANNED: [&str; 4] = ["SystemTime", "Instant", "thread_rng", "from_entropy"];
    for t in code {
        if t.line >= test_from {
            break;
        }
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push(Finding {
                rule: "wall-clock-entropy",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`{}` in simulation/artifact library code: wall clocks and OS \
                     entropy break bit-exact replay; thread timing through the caller \
                     and randomness through seeded rngs (`ppsim::rng`)",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

/// d3 — `float-format`.
fn check_float_format(path: &str, code: &[&Tok], test_from: usize, out: &mut Vec<Finding>) {
    if !in_crate(path, "crates/experiments/src/") || path == CANONICAL_EMITTER {
        return;
    }
    for t in code {
        if t.line >= test_from {
            break;
        }
        if t.kind == TokKind::Str
            && (t.text.contains("{:.") || t.text.contains("{:e") || t.text.contains("{:E"))
        {
            out.push(Finding {
                rule: "float-format",
                path: path.to_string(),
                line: t.line,
                message: "ad-hoc float formatting in the artifact layer: artifact floats \
                          must go through the canonical shortest-round-trip emitter \
                          (ppexp::json) or byte-identity breaks on re-parse"
                    .to_string(),
                suppressed: None,
            });
        }
    }
}

/// s1 — `undocumented-unsafe`.
///
/// An `unsafe` block (`unsafe {`) or `unsafe impl`/`unsafe trait` must
/// have a comment containing `SAFETY:` on its own line or within the
/// three lines above it. `unsafe fn` *declarations* are the callee side
/// of the contract and are covered by their doc comments instead.
fn check_undocumented_unsafe(path: &str, toks: &[Tok], code: &[&Tok], out: &mut Vec<Finding>) {
    // Lines at which a SAFETY comment *ends*. A multi-line safety
    // argument — one block comment, or a run of consecutive `//` lines
    // where any line carries the marker — is credited at its last line,
    // so the "within three lines above the site" window measures from
    // where the comment stops, not where it starts.
    let mut safety_lines: Vec<usize> = Vec::new();
    let mut run_end: Option<usize> = None; // last line of the current `//` run
    let mut run_has_safety = false;
    for t in toks {
        if t.kind == TokKind::LineComment {
            match run_end {
                Some(end) if t.line == end + 1 => run_end = Some(t.line),
                _ => {
                    if run_has_safety {
                        safety_lines.extend(run_end);
                    }
                    run_end = Some(t.line);
                    run_has_safety = false;
                }
            }
            run_has_safety |= t.text.contains("SAFETY:");
        } else {
            if run_has_safety {
                safety_lines.extend(run_end);
            }
            run_end = None;
            run_has_safety = false;
            if t.kind == TokKind::BlockComment && t.text.contains("SAFETY:") {
                safety_lines.push(t.line + t.text.matches('\n').count());
            }
        }
    }
    if run_has_safety {
        safety_lines.extend(run_end);
    }
    for (i, t) in code.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        let next = code.get(i + 1).map(|n| n.text.as_str());
        let form = match next {
            Some("{") => "unsafe block",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            _ => continue,
        };
        let documented = safety_lines.iter().any(|&l| l <= t.line && l + 3 >= t.line);
        if !documented {
            out.push(Finding {
                rule: "undocumented-unsafe",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "{form} without a `// SAFETY:` comment: every unsafe site must \
                     state the invariant that makes it sound"
                ),
                suppressed: None,
            });
        }
    }
}

/// s2 — `cache-unwrap`.
fn check_cache_unwrap(path: &str, code: &[&Tok], test_from: usize, out: &mut Vec<Finding>) {
    if path != "crates/experiments/src/cache.rs" {
        return;
    }
    for (i, t) in code.iter().enumerate() {
        if t.line >= test_from {
            break;
        }
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && code[i - 1].text == "."
        {
            out.push(Finding {
                rule: "cache-unwrap",
                path: path.to_string(),
                line: t.line,
                message: format!(
                    "`.{}()` in a cache I/O path: cache corruption must degrade to a \
                     clean miss (return None / Err), never a panic",
                    t.text
                ),
                suppressed: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXP: &str = "crates/experiments/src/foo.rs";

    fn unsuppressed(f: &[Finding]) -> usize {
        f.iter().filter(|f| f.suppressed.is_none()).count()
    }

    #[test]
    fn rules_are_path_scoped() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(scan_source(EXP, src).len(), 1);
        assert_eq!(scan_source("crates/bench/src/lib.rs", src).len(), 1);
        // ppsim may use hash collections (no artifact bytes flow from it
        // without passing through ppexp's deterministic emitters)…
        assert!(scan_source("crates/ppsim/src/agent_sim.rs", src).is_empty());
        // …and the sorted adapter is the designated home for them.
        assert!(scan_source(SORTED_ADAPTER, src).is_empty());
    }

    #[test]
    fn wall_clock_scoping_allows_bench_timing() {
        let src = "use std::time::Instant;\nfn t() { let _ = Instant::now(); }\n";
        assert_eq!(scan_source("crates/ppsim/src/urn.rs", src).len(), 2);
        assert_eq!(scan_source(EXP, src).len(), 2);
        // Benches time things for a living; vendor/criterion is its home.
        assert!(scan_source("crates/bench/benches/engine.rs", src).is_empty());
        assert!(scan_source("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn instantiate_is_not_instant() {
        // Token-level matching: substrings of longer identifiers and
        // words in comments/strings never fire.
        let src = "/// Instantiate the thing.\nfn instantiate() { let s = \"Instant\"; }\n";
        assert!(scan_source("crates/ppsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_format_exempts_the_canonical_emitter() {
        let src = "fn f(x: f64) -> String { format!(\"{:.3}\", x) }\n";
        assert_eq!(scan_source(EXP, src).len(), 1);
        assert!(scan_source(super::CANONICAL_EMITTER, src).is_empty());
        // Hex-pad specifiers are not float formatting.
        let hex = "fn f(x: u64) -> String { format!(\"{x:016x}\") }\n";
        assert!(scan_source(EXP, hex).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = scan_source("crates/ppsim/src/x.rs", bad);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "undocumented-unsafe");

        let good = "fn f() {\n    // SAFETY: provably unreachable.\n    unsafe { core::hint::unreachable_unchecked() }\n}\n";
        assert!(scan_source("crates/ppsim/src/x.rs", good).is_empty());

        // `unsafe impl` needs it too; `unsafe fn` declarations do not.
        let imp = "unsafe impl Sync for X {}\n";
        assert_eq!(scan_source("src/lib.rs", imp).len(), 1);
        let decl = "unsafe fn f() {}\n";
        assert!(scan_source("src/lib.rs", decl).is_empty());
    }

    #[test]
    fn safety_comment_window_is_three_lines() {
        let far = "// SAFETY: too far away.\n\n\n\n\nfn f() { unsafe { x() } }\n";
        assert_eq!(scan_source("src/lib.rs", far).len(), 1);
        let multiline =
            "/* SAFETY: spans\nlines\nright up to the site */\nfn f() { unsafe { x() } }\n";
        assert!(scan_source("src/lib.rs", multiline).is_empty());
    }

    #[test]
    fn multi_line_slash_safety_runs_are_credited_at_their_last_line() {
        // A long `// SAFETY: …` argument spanning many `//` lines must
        // count from where it *ends* (this is the parallel.rs shape).
        let long = "\
// SAFETY: the work-queue counter partitions all access —\n\
// each index goes to exactly one thread, and the scope\n\
// join publishes the writes. Five lines of argument is\n\
// normal for a nontrivial soundness claim, and the window\n\
// must measure from the last of them.\n\
unsafe impl Sync for X {}\n";
        assert!(scan_source("src/lib.rs", long).is_empty());
        // But an unrelated comment run does not smuggle credit forward:
        // the SAFETY line followed by a >3-line gap of *code* still fails.
        let gap = "\
// SAFETY: stale.\n\
fn a() {}\n\
fn b() {}\n\
fn c() {}\n\
fn d() { unsafe { x() } }\n";
        assert_eq!(scan_source("src/lib.rs", gap).len(), 1);
    }

    #[test]
    fn cache_unwrap_is_file_scoped() {
        let src = "fn f() { std::fs::read_to_string(\"x\").unwrap(); }\n";
        let f = scan_source("crates/experiments/src/cache.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "cache-unwrap");
        assert!(scan_source(EXP, src).is_empty());
        // Free function named `expect` (ppexp::json has one) is fine.
        let free = "fn g() { expect(bytes, pos, b':'); }\n";
        assert!(scan_source("crates/experiments/src/cache.rs", free).is_empty());
    }

    #[test]
    fn test_modules_are_exempt_from_determinism_rules_only() {
        let src = "\
fn lib() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    use std::time::Instant;\n\
    fn t() { unsafe { x() } }\n\
}\n";
        let f = scan_source(EXP, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "undocumented-unsafe");
    }

    #[test]
    fn pragma_suppresses_with_reason_on_line_or_line_above() {
        let above = "// ppcheck: allow(hash-collections, \"scratch map, never iterated\")\nuse std::collections::HashMap;\n";
        let f = scan_source(EXP, above);
        assert_eq!(f.len(), 1);
        assert_eq!(
            f[0].suppressed.as_deref(),
            Some("scratch map, never iterated")
        );
        assert_eq!(unsuppressed(&f), 0);

        let inline = "use std::collections::HashMap; // ppcheck: allow(hash-collections, \"re-exported only\")\n";
        assert_eq!(unsuppressed(&scan_source(EXP, inline)), 0);

        // A pragma for a *different* rule does not suppress.
        let wrong =
            "// ppcheck: allow(float-format, \"misdirected\")\nuse std::collections::HashMap;\n";
        assert_eq!(unsuppressed(&scan_source(EXP, wrong)), 1);
    }

    #[test]
    fn malformed_pragmas_are_findings() {
        for (src, why) in [
            ("// ppcheck: allow(hash-collections)\n", "missing reason"),
            ("// ppcheck: allow(no-such-rule, \"x\")\n", "unknown rule"),
            (
                "// ppcheck: allow(hash-collections, \"\")\n",
                "empty reason",
            ),
            ("// ppcheck: disallow(hash-collections)\n", "not allow"),
            ("// ppcheck: allow(pragma, \"nope\")\n", "self-suppression"),
        ] {
            let f = scan_source(EXP, src);
            assert_eq!(f.len(), 1, "{why}: {f:?}");
            assert_eq!(f[0].rule, "pragma", "{why}");
            assert!(f[0].suppressed.is_none(), "{why}");
        }
    }

    #[test]
    fn findings_are_line_ordered() {
        let src = "use std::collections::HashSet;\nfn f() { unsafe { x() } }\nuse std::collections::HashMap;\n";
        let f = scan_source(EXP, src);
        let lines: Vec<_> = f.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
