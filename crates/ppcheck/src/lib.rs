//! # ppcheck — workspace determinism-and-soundness lint pass
//!
//! Every guarantee this reproduction makes — byte-identical `ppexp/v1`
//! artifacts at any thread count, bit-exact trial replay, content-
//! addressed cache hits — is a *determinism invariant*: one iteration
//! over a `HashMap`, one `Instant::now()`, one ad-hoc `{:.3}` float in
//! the artifact layer, and artifact bytes silently start depending on
//! hasher state, wall clocks or formatting accidents. Integration tests
//! catch such violations after the fact; this crate catches them at the
//! source level, before they land.
//!
//! The pass is a comment/string-aware Rust tokenizer ([`lexer`]) plus a
//! rule engine ([`rules`]) that walks every workspace `.rs` file and
//! enforces the named project invariants (see the rule table in
//! `rules.rs` and the README's "Static guarantees" section). Findings are
//! suppressible only by an auditable inline pragma:
//!
//! ```text
//! // ppcheck: allow(<rule>, "<reason>")
//! ```
//!
//! on the offending line or the line directly above. The binary
//! (`cargo run -p ppcheck`) emits a human-readable report plus optional
//! JSONL (`PPCHECK_JSON=<path>` or `--json <path>`) and exits nonzero on
//! any unsuppressed finding — which is how CI gates every PR.
//!
//! std-only by design: the analyzer guards (among other things) the
//! no-registry constraint, so it depends on nothing but the standard
//! library, and its own output is deterministic (sorted directory walk,
//! line-ordered findings).

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{scan_source, Finding, RULE_IDS};

use std::path::{Path, PathBuf};

/// Directories the workspace walk never descends into: build output, git
/// metadata, and the analyzer's own rule fixtures (which *deliberately*
/// violate the rules).
const SKIP_DIRS: [&str; 3] = ["target", ".git", "fixtures"];

/// All workspace `.rs` files under `root`, workspace-relative and sorted
/// (byte order) — the walk itself must be deterministic or the report
/// ordering would depend on readdir order.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, Path::new(""), &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, rel: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> =
        std::fs::read_dir(root.join(rel))?.collect::<std::io::Result<Vec<_>>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name_str = name.to_string_lossy();
        let rel_child = rel.join(&name);
        let kind = entry.file_type()?;
        if kind.is_dir() {
            if SKIP_DIRS.contains(&name_str.as_ref()) {
                continue;
            }
            walk(root, &rel_child, out)?;
        } else if kind.is_file() && name_str.ends_with(".rs") {
            out.push(rel_child);
        }
    }
    Ok(())
}

/// Scan every workspace `.rs` file under `root`. Returns the findings
/// (suppressed ones included, marked) and the number of files scanned.
pub fn scan_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(scan_source(&rel_str, &src));
    }
    Ok((findings, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_skips_fixture_and_target_dirs() {
        let dir = std::env::temp_dir().join(format!("ppcheck-walk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["src", "target/debug", "fixtures/x", ".git"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        std::fs::write(dir.join("src/b.rs"), "").unwrap();
        std::fs::write(dir.join("src/a.rs"), "").unwrap();
        std::fs::write(dir.join("target/debug/gen.rs"), "").unwrap();
        std::fs::write(dir.join("fixtures/x/viol.rs"), "").unwrap();
        std::fs::write(dir.join("notes.txt"), "").unwrap();
        let files = workspace_files(&dir).unwrap();
        assert_eq!(
            files,
            vec![PathBuf::from("src/a.rs"), PathBuf::from("src/b.rs")]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
