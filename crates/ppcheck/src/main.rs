//! `ppcheck` binary: scan the workspace (or a single file) and report.
//!
//! ```text
//! cargo run -p ppcheck                      # scan the workspace at .
//! cargo run -p ppcheck -- --root <dir>      # scan another checkout
//! cargo run -p ppcheck -- --json report.jsonl
//! PPCHECK_JSON=report.jsonl cargo run -p ppcheck
//! cargo run -p ppcheck -- --file f.rs --as crates/experiments/src/f.rs
//! ```
//!
//! `--file`/`--as` scans one file as if it lived at the given
//! workspace-relative path (rules are path-scoped); this is what the
//! fixture CLI tests drive. Exit status: 0 when clean, 1 on any
//! unsuppressed finding, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_path = std::env::var("PPCHECK_JSON").ok().map(PathBuf::from);
    let mut file: Option<PathBuf> = None;
    let mut file_as: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--root" => match value("--root") {
                Ok(v) => root = PathBuf::from(v),
                Err(e) => return usage(&e),
            },
            "--json" => match value("--json") {
                Ok(v) => json_path = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--file" => match value("--file") {
                Ok(v) => file = Some(PathBuf::from(v)),
                Err(e) => return usage(&e),
            },
            "--as" => match value("--as") {
                Ok(v) => file_as = Some(v),
                Err(e) => return usage(&e),
            },
            "--help" | "-h" => {
                print!(
                    "ppcheck: workspace determinism-and-soundness lint pass\n\n\
                     usage: ppcheck [--root DIR] [--json PATH] [--file FILE --as REL_PATH]\n\n\
                     Scans every workspace .rs file (skipping target/, .git/ and rule\n\
                     fixtures) and reports violations of the project invariants; see\n\
                     README 'Static guarantees' for the rule table and pragma syntax.\n\
                     PPCHECK_JSON=<path> (or --json) additionally writes a JSONL report.\n\
                     Exits 1 on any unsuppressed finding.\n"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }

    let (findings, files_scanned) = match (&file, &file_as) {
        (Some(f), as_path) => {
            let rel = as_path.clone().unwrap_or_else(|| f.display().to_string());
            match std::fs::read_to_string(f) {
                Ok(src) => (ppcheck::scan_source(&rel, &src), 1),
                Err(e) => return fail(&format!("reading {}: {e}", f.display())),
            }
        }
        (None, Some(_)) => return usage("--as needs --file"),
        (None, None) => {
            if !root.join("Cargo.toml").is_file() {
                return fail(&format!(
                    "{} does not look like a workspace root (no Cargo.toml); use --root",
                    root.display()
                ));
            }
            match ppcheck::scan_workspace(&root) {
                Ok(r) => r,
                Err(e) => return fail(&format!("scanning {}: {e}", root.display())),
            }
        }
    };

    print!("{}", ppcheck::report::human(&findings, files_scanned));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, ppcheck::report::jsonl(&findings)) {
            return fail(&format!("writing {}: {e}", path.display()));
        }
    }

    if findings.iter().any(|f| f.suppressed.is_none()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ppcheck: {msg} (try --help)");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("ppcheck: {msg}");
    ExitCode::from(2)
}
