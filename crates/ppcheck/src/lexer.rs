//! A comment- and string-aware Rust tokenizer.
//!
//! The rule engine must never mistake the word `HashMap` inside a string
//! literal or a doc comment for a use of the type, and it must be able to
//! *read* comments (for `// SAFETY:` discipline and `// ppcheck: allow`
//! pragmas). So the lexer keeps comments as first-class tokens instead of
//! discarding them, and collapses every literal into a single token whose
//! interior is opaque to identifier matching.
//!
//! This is deliberately not a full Rust lexer: numbers are tokenized
//! coarsely and punctuation is single-byte. The rules only ever match
//! identifiers, literals, comments and a handful of adjacent punctuation
//! marks, and the fixtures plus the workspace meta-test pin that this
//! resolution is enough.

/// Token classes the rule engine distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, …).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` is never a char literal.
    Lifetime,
    /// Numeric literal, coarsely scanned.
    Number,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`), with the
    /// raw source text (quotes and all) preserved for content rules.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Single punctuation byte.
    Punct,
    /// `// …` comment (doc or plain), text includes the slashes.
    LineComment,
    /// `/* … */` comment (nesting handled), text includes delimiters.
    BlockComment,
}

/// One token with its 1-based starting line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    /// Whether this token is a comment of either flavour.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Comment body with the `//`/`/*` markers (and doc-comment extra
    /// `/`/`!`) stripped — what pragma and SAFETY matching looks at.
    pub fn comment_body(&self) -> &str {
        match self.kind {
            TokKind::LineComment => self
                .text
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim(),
            TokKind::BlockComment => self
                .text
                .trim_start_matches("/*")
                .trim_start_matches(['*', '!'])
                .trim_end_matches("*/")
                .trim(),
            _ => "",
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`, keeping comments. Unterminated literals and comments
/// terminate at end of input rather than erroring: the analyzer must
/// never panic on the code it audits.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;

    // Consume chars [start, end) into `text`, bumping the line counter.
    let take = |chars: &[char], start: usize, end: usize, line: &mut usize| -> String {
        let text: String = chars[start..end].iter().collect();
        *line += text.matches('\n').count();
        text
    };

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let mut j = i;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < chars.len() && depth > 0 {
                if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: take(&chars, i, j, &mut line),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Raw / byte string prefixes: r" r#" b" br" br#" b' — checked
        // before plain identifiers so the prefix letter is not split off.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            if c == 'b' && chars.get(j) == Some(&'r') {
                j += 1;
            }
            let raw = j > i + 1 || c == 'r';
            if raw && matches!(chars.get(j), Some('"') | Some('#')) {
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    j += 1;
                    // Scan to `"` followed by `hashes` hash marks.
                    'scan: while j < chars.len() {
                        if chars[j] == '"' {
                            let mut k = j + 1;
                            let mut seen = 0usize;
                            while seen < hashes && chars.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: take(&chars, i, j, &mut line),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
            if c == 'b' && chars.get(i + 1) == Some(&'"') {
                let j = scan_quoted(&chars, i + 2, '"');
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: take(&chars, i, j, &mut line),
                    line: start_line,
                });
                i = j;
                continue;
            }
            if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                let j = scan_quoted(&chars, i + 2, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: take(&chars, i, j, &mut line),
                    line: start_line,
                });
                i = j;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // Plain strings.
        if c == '"' {
            let j = scan_quoted(&chars, i + 1, '"');
            toks.push(Tok {
                kind: TokKind::Str,
                text: take(&chars, i, j, &mut line),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) || n.is_ascii_digit() => {
                    // `'a'` is a char, `'a` (no closing quote) a lifetime.
                    chars.get(i + 2) == Some(&'\'')
                }
                Some(_) => true, // e.g. '(' … any non-ident char literal
                None => false,
            };
            if is_char {
                let j = scan_quoted(&chars, i + 1, '\'');
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: take(&chars, i, j, &mut line),
                    line: start_line,
                });
                i = j;
            } else {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[i..j].iter().collect(),
                    line: start_line,
                });
                i = j;
            }
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Numbers (coarse: `1_000u64`, `0xFF`, `1.5e-3`; `0..9` keeps the
        // dots out of the number so ranges lex as three tokens).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() {
                let d = chars[j];
                if is_ident_continue(d) {
                    j += 1;
                } else if d == '.' && chars.get(j + 1).is_some_and(char::is_ascii_digit) {
                    j += 2;
                } else if (d == '+' || d == '-')
                    && matches!(chars.get(j.wrapping_sub(1)), Some('e') | Some('E'))
                {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Number,
                text: chars[i..j].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }

        // Everything else: one punctuation byte.
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
        i += 1;
    }
    toks
}

/// Scan a quoted literal body starting *after* the opening quote; returns
/// the index just past the closing quote (or end of input).
fn scan_quoted(chars: &[char], mut i: usize, quote: char) -> usize {
    while i < chars.len() {
        if chars[i] == '\\' {
            i += 2;
        } else if chars[i] == quote {
            return i + 1;
        } else {
            i += 1;
        }
    }
    chars.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn identifiers_in_strings_and_comments_are_not_idents() {
        let src = r#"
            // HashMap in a comment
            /* Instant in a block */
            let x = "HashMap<Instant>";
            let y = use_map();
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"use_map".to_string()));
    }

    #[test]
    fn raw_strings_swallow_their_contents() {
        let src = r###"let s = r#"unsafe { HashMap }"#; let t = other;"###;
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "s", "let", "t", "other"]);
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "'x'");
    }

    #[test]
    fn escaped_quotes_and_nested_block_comments() {
        let toks = lex(r#"let s = "a\"unsafe\"b"; /* outer /* unsafe */ still */ done"#);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "unsafe"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "done"));
        let blocks: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::BlockComment)
            .collect();
        assert_eq!(blocks.len(), 1, "nested block comment lexes as one token");
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "line1\n\"multi\nline\nstring\"\nfinal_ident";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.line, 2);
        let id = toks.iter().find(|t| t.text == "final_ident").unwrap();
        assert_eq!(id.line, 5);
    }

    #[test]
    fn byte_literals() {
        let toks = lex(r##"let a = b"bytes HashMap"; let c = b'\n'; let r = br#"raw"#;"##);
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            2,
            "b-string and br-string"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 1);
    }

    #[test]
    fn comment_body_strips_markers() {
        let toks = lex("/// doc text\n//! inner\n// SAFETY: fine\n/* block */");
        let bodies: Vec<_> = toks.iter().map(Tok::comment_body).collect();
        assert_eq!(bodies, vec!["doc text", "inner", "SAFETY: fine", "block"]);
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        lex("let s = \"never closed");
        lex("let c = '");
        lex("/* never closed");
        lex("let r = r#\"never closed");
    }
}
