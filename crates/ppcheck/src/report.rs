//! Human-readable and JSONL rendering of findings.
//!
//! The JSONL report (one object per finding, suppressed ones included
//! with their audit reasons) is what CI uploads; the human report is what
//! a developer reads in the terminal. Both are deterministic functions of
//! the finding list, which is itself deterministic (sorted file walk,
//! line-ordered findings per file).

use crate::rules::Finding;

/// Human-readable report: unsuppressed findings first (these fail the
/// run), then the suppression audit trail, then a one-line summary.
pub fn human(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    let active: Vec<&Finding> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    let suppressed: Vec<&Finding> = findings.iter().filter(|f| f.suppressed.is_some()).collect();

    for f in &active {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            f.path, f.line, f.rule, f.message
        ));
    }
    if !suppressed.is_empty() {
        out.push_str("suppressed (audit trail):\n");
        for f in &suppressed {
            out.push_str(&format!(
                "  {}:{}: [{}] allowed: {}\n",
                f.path,
                f.line,
                f.rule,
                f.suppressed.as_deref().unwrap_or("")
            ));
        }
    }
    out.push_str(&format!(
        "ppcheck: {} finding{} ({} suppressed) across {} files\n",
        active.len(),
        if active.len() == 1 { "" } else { "s" },
        suppressed.len(),
        files_scanned
    ));
    out
}

/// JSONL report: one line per finding.
pub fn jsonl(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{},\"suppressed\":{},\"reason\":{}}}\n",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(&f.message),
            f.suppressed.is_some(),
            f.suppressed.as_deref().map_or("null".to_string(), esc),
        ));
    }
    out
}

/// Minimal JSON string escaping (the finding fields are ASCII paths and
/// prose; control characters are escaped defensively anyway).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(suppressed: Option<&str>) -> Finding {
        Finding {
            rule: "hash-collections",
            path: "crates/experiments/src/foo.rs".into(),
            line: 7,
            message: "a \"quoted\" message".into(),
            suppressed: suppressed.map(String::from),
        }
    }

    #[test]
    fn human_report_separates_active_from_suppressed() {
        let r = human(&[finding(None), finding(Some("why"))], 3);
        assert!(r.contains("crates/experiments/src/foo.rs:7: [hash-collections]"));
        assert!(r.contains("suppressed (audit trail):"));
        assert!(r.contains("allowed: why"));
        assert!(r.contains("ppcheck: 1 finding (1 suppressed) across 3 files"));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let r = jsonl(&[finding(None), finding(Some("a \"reason\""))]);
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"suppressed\":false"));
        assert!(lines[0].contains("\"reason\":null"));
        assert!(lines[1].contains("\"suppressed\":true"));
        assert!(lines[1].contains("\\\"reason\\\""));
        assert!(lines[0].contains("\\\"quoted\\\""));
    }

    #[test]
    fn escaping_handles_control_chars() {
        assert_eq!(esc("a\nb\tc\u{1}"), "\"a\\nb\\tc\\u0001\"");
    }
}
