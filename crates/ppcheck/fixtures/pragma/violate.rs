// Fixture: malformed pragmas are findings themselves.
// ppcheck: allow(hash-collections)
// ppcheck: allow(no-such-rule, "reason")
// ppcheck: allow(cache-unwrap, "")
pub fn noop() {}
