// Fixture: a well-formed pragma with nothing to suppress is not a
// finding (it is simply unused).
// ppcheck: allow(hash-collections, "documents intent for the line below")
pub fn noop() {}
