// Fixture: d3 clean — integers may be padded (cache file names), floats
// go through the canonical emitter upstream.
pub fn entry_name(seed: u64) -> String {
    format!("{seed:016x}.json")
}
