// Fixture: d3 suppressed.
pub fn banner(throughput: f64) -> String {
    // ppcheck: allow(float-format, "stderr progress banner, not artifact bytes")
    format!("{:.1} Melem/s", throughput)
}
