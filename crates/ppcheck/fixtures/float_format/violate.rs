// Fixture: d3 violation — ad-hoc float formatting in the artifact layer
// (scanned as crates/experiments/src/…, not json.rs).
pub fn cell(value: f64) -> String {
    format!("{:.6}", value)
}

pub fn sci(value: f64) -> String {
    format!("{:e}", value)
}
