// Fixture: s1 violation — unsafe block and unsafe impl with no SAFETY
// comment (scanned anywhere in the workspace).
pub struct Slot(*mut u8);

unsafe impl Sync for Slot {}

pub fn read(slot: &Slot) -> u8 {
    unsafe { *slot.0 }
}
