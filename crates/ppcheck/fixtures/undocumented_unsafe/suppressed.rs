// Fixture: s1 suppressed — possible, but the pragma is the audit trail.
pub fn zeroed() -> u64 {
    // ppcheck: allow(undocumented-unsafe, "zeroed u64 is trivially valid")
    unsafe { std::mem::zeroed() }
}
