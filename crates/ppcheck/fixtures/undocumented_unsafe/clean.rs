// Fixture: s1 clean — every unsafe site states its invariant.
pub struct Slot(*mut u8);

// SAFETY: Slot is only handed out with exclusive per-index ownership;
// no two threads ever alias the same pointer.
unsafe impl Sync for Slot {}

pub fn read(slot: &Slot) -> u8 {
    // SAFETY: the caller holds the only live reference to this slot.
    unsafe { *slot.0 }
}
