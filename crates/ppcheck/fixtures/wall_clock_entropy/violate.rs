// Fixture: d2 violation — wall clock and OS entropy in simulation
// library code (scanned as crates/ppsim/src/…).
use std::time::Instant;
use std::time::SystemTime;

pub fn measure() -> f64 {
    let start = Instant::now();
    let _ = SystemTime::now();
    let rng = thread_rng();
    let _ = from_entropy(rng);
    start.elapsed().as_secs_f64()
}
