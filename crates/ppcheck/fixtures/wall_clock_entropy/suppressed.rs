// Fixture: d2 suppressed.
use std::time::Instant; // ppcheck: allow(wall-clock-entropy, "progress logging only; never enters an artifact")

pub fn log_progress() {
    // ppcheck: allow(wall-clock-entropy, "progress logging only; never enters an artifact")
    let _ = Instant::now();
}
