// Fixture: d2 clean — timing comes from the caller, randomness from
// seeded rngs; interaction counts are the simulation clock.
pub fn measure(interactions: u64, n: u64) -> f64 {
    interactions as f64 / n as f64
}

pub fn draw(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E3779B97F4A7C15)
}
