// Fixture: d1 suppressed — the pragma must name the rule and a reason,
// and covers its own line or the line below only.
// ppcheck: allow(hash-collections, "lookup table only, never iterated")
use std::collections::HashMap;

pub fn lookup(
    // ppcheck: allow(hash-collections, "lookup table only, never iterated")
    map: &HashMap<u64, f64>,
    key: u64,
) -> Option<f64> {
    map.get(&key).copied()
}
