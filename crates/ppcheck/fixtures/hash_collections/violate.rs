// Fixture: d1 violation — unordered hash collections in an
// artifact-producing crate (scanned as crates/experiments/src/…).
use std::collections::HashMap;

pub fn emit(metrics: &HashMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in metrics {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
