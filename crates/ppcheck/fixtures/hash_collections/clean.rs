// Fixture: d1 clean — ordered collections carry artifact bytes.
use std::collections::BTreeMap;

pub fn emit(metrics: &BTreeMap<String, f64>) -> String {
    let mut out = String::new();
    for (k, v) in metrics {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}
