// Fixture: s2 suppressed.
pub fn load(path: &std::path::Path) -> String {
    // ppcheck: allow(cache-unwrap, "fixture: startup-only read of a committed file")
    std::fs::read_to_string(path).unwrap()
}
