// Fixture: s2 clean — corruption degrades to a clean miss.
pub fn load(path: &std::path::Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    Some(text.strip_prefix("v1:")?.to_string())
}
