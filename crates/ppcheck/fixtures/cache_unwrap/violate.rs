// Fixture: s2 violation — panicking I/O in the cache (scanned as
// crates/experiments/src/cache.rs).
pub fn load(path: &std::path::Path) -> String {
    let text = std::fs::read_to_string(path).unwrap();
    text.strip_prefix("v1:").expect("versioned entry").to_string()
}
