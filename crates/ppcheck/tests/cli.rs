//! End-to-end CLI contract: exit codes and the JSONL report, driven
//! through the real binary (`CARGO_BIN_EXE_ppcheck`). This is the same
//! interface the CI job gates on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ppcheck"))
}

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

#[test]
fn violating_fixtures_exit_nonzero() {
    for (fix, as_path) in [
        ("hash_collections/violate.rs", "crates/experiments/src/f.rs"),
        ("wall_clock_entropy/violate.rs", "crates/ppsim/src/f.rs"),
        ("float_format/violate.rs", "crates/experiments/src/f.rs"),
        ("undocumented_unsafe/violate.rs", "crates/ppsim/src/f.rs"),
        ("cache_unwrap/violate.rs", "crates/experiments/src/cache.rs"),
        ("pragma/violate.rs", "crates/experiments/src/f.rs"),
    ] {
        let out = bin()
            .args(["--file"])
            .arg(fixture(fix))
            .args(["--as", as_path])
            .env_remove("PPCHECK_JSON")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(1), "{fix} must fail the run");
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains(as_path), "{fix}: report names the path");
    }
}

#[test]
fn clean_and_suppressed_fixtures_exit_zero() {
    for (fix, as_path) in [
        ("hash_collections/clean.rs", "crates/experiments/src/f.rs"),
        (
            "hash_collections/suppressed.rs",
            "crates/experiments/src/f.rs",
        ),
        ("undocumented_unsafe/clean.rs", "crates/ppsim/src/f.rs"),
        (
            "cache_unwrap/suppressed.rs",
            "crates/experiments/src/cache.rs",
        ),
    ] {
        let out = bin()
            .args(["--file"])
            .arg(fixture(fix))
            .args(["--as", as_path])
            .env_remove("PPCHECK_JSON")
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(0), "{fix} must pass");
    }
}

#[test]
fn workspace_scan_exits_zero_and_writes_jsonl() {
    let json = std::env::temp_dir().join(format!("ppcheck-cli-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&json);
    let out = bin()
        .arg("--root")
        .arg(workspace_root())
        .arg("--json")
        .arg(&json)
        .output()
        .unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "committed tree must be ppcheck-clean:\n{stdout}"
    );
    assert!(stdout.contains("ppcheck: 0 findings"), "{stdout}");
    // The JSONL report exists and holds only suppressed findings (if any).
    let report = std::fs::read_to_string(&json).unwrap();
    for line in report.lines() {
        assert!(
            line.contains("\"suppressed\":true"),
            "unsuppressed in JSONL: {line}"
        );
    }
    let _ = std::fs::remove_file(&json);
}

#[test]
fn usage_errors_exit_two() {
    let out = bin().arg("--no-such-flag").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["--root", "/nonexistent-ppcheck-root"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
