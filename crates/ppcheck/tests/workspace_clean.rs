//! Meta-test: the committed tree is ppcheck-clean.
//!
//! This runs on every `cargo test`, so a PR that introduces a hash
//! iteration into the artifact crates, a wall clock into ppsim, an
//! undocumented unsafe block, or a panicking cache path fails its test
//! suite even before the dedicated CI job runs the binary.

use std::path::Path;

#[test]
fn committed_tree_has_zero_unsuppressed_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let (findings, files) = ppcheck::scan_workspace(&root).unwrap();
    // Sanity: the walk actually saw the workspace, not an empty dir.
    assert!(
        files > 60,
        "walk found only {files} files — wrong root? ({})",
        root.display()
    );
    let active: Vec<_> = findings.iter().filter(|f| f.suppressed.is_none()).collect();
    assert!(
        active.is_empty(),
        "committed tree has {} unsuppressed finding(s):\n{}",
        active.len(),
        active
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.path, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn suppressions_in_tree_carry_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let (findings, _) = ppcheck::scan_workspace(&root).unwrap();
    for f in findings.iter().filter(|f| f.suppressed.is_some()) {
        assert!(
            !f.suppressed.as_deref().unwrap().trim().is_empty(),
            "{}:{} suppression has an empty reason",
            f.path,
            f.line
        );
    }
}
