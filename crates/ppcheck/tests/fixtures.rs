//! Per-rule fixture self-tests: every rule has a violating, a clean and
//! a pragma-suppressed snippet, scanned under the synthetic path that
//! puts it in the rule's scope. These are the pinned positive/negative
//! examples of what each invariant means.

use ppcheck::{scan_source, Finding};

/// Scan a fixture under a synthetic workspace-relative path.
fn scan(fixture: &str, as_path: &str) -> Vec<Finding> {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures/");
    let src = std::fs::read_to_string(format!("{root}{fixture}")).unwrap();
    scan_source(as_path, &src)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

fn assert_all_suppressed(findings: &[Finding], rule: &str) {
    assert!(!findings.is_empty(), "suppressed fixture must still match");
    for f in findings {
        assert_eq!(f.rule, rule);
        let reason = f
            .suppressed
            .as_deref()
            .unwrap_or_else(|| panic!("finding at line {} should be suppressed: {f:?}", f.line));
        assert!(!reason.is_empty(), "audit reason must be recorded");
    }
}

const EXP_PATH: &str = "crates/experiments/src/fixture.rs";
const SIM_PATH: &str = "crates/ppsim/src/fixture.rs";
const CACHE_PATH: &str = "crates/experiments/src/cache.rs";

#[test]
fn hash_collections_fixtures() {
    let v = scan("hash_collections/violate.rs", EXP_PATH);
    assert_eq!(rules(&v), vec!["hash-collections", "hash-collections"]);
    assert!(v.iter().all(|f| f.suppressed.is_none()));

    assert!(scan("hash_collections/clean.rs", EXP_PATH).is_empty());
    assert_all_suppressed(
        &scan("hash_collections/suppressed.rs", EXP_PATH),
        "hash-collections",
    );

    // Out of scope, out of findings: the same source is legal in ppsim.
    assert!(scan("hash_collections/violate.rs", SIM_PATH).is_empty());
}

#[test]
fn wall_clock_entropy_fixtures() {
    let v = scan("wall_clock_entropy/violate.rs", SIM_PATH);
    assert_eq!(
        v.iter().filter(|f| f.rule == "wall-clock-entropy").count(),
        v.len()
    );
    // Instant ×2, SystemTime ×2, thread_rng, from_entropy.
    assert_eq!(v.len(), 6);

    assert!(scan("wall_clock_entropy/clean.rs", SIM_PATH).is_empty());
    assert_all_suppressed(
        &scan("wall_clock_entropy/suppressed.rs", SIM_PATH),
        "wall-clock-entropy",
    );

    // Bench timing code is out of scope by design.
    assert!(scan(
        "wall_clock_entropy/violate.rs",
        "crates/bench/benches/engine.rs"
    )
    .is_empty());
}

#[test]
fn float_format_fixtures() {
    let v = scan("float_format/violate.rs", EXP_PATH);
    assert_eq!(rules(&v), vec!["float-format", "float-format"]);

    assert!(scan("float_format/clean.rs", EXP_PATH).is_empty());
    assert_all_suppressed(
        &scan("float_format/suppressed.rs", EXP_PATH),
        "float-format",
    );

    // The canonical emitter itself is the one exemption.
    assert!(scan("float_format/violate.rs", "crates/experiments/src/json.rs").is_empty());
}

#[test]
fn undocumented_unsafe_fixtures() {
    let v = scan("undocumented_unsafe/violate.rs", SIM_PATH);
    assert_eq!(
        rules(&v),
        vec!["undocumented-unsafe", "undocumented-unsafe"]
    );

    assert!(scan("undocumented_unsafe/clean.rs", SIM_PATH).is_empty());
    assert_all_suppressed(
        &scan("undocumented_unsafe/suppressed.rs", SIM_PATH),
        "undocumented-unsafe",
    );

    // s1 is workspace-wide: the same violations fire under any path.
    assert_eq!(
        scan("undocumented_unsafe/violate.rs", "vendor/rand/src/lib.rs").len(),
        2
    );
    assert_eq!(
        scan("undocumented_unsafe/violate.rs", "src/bin/ppctl.rs").len(),
        2
    );
}

#[test]
fn cache_unwrap_fixtures() {
    let v = scan("cache_unwrap/violate.rs", CACHE_PATH);
    assert_eq!(rules(&v), vec!["cache-unwrap", "cache-unwrap"]);

    assert!(scan("cache_unwrap/clean.rs", CACHE_PATH).is_empty());
    assert_all_suppressed(
        &scan("cache_unwrap/suppressed.rs", CACHE_PATH),
        "cache-unwrap",
    );

    // Scoped to the cache: other experiment modules may unwrap logic
    // invariants (their panics cannot be caused by on-disk corruption).
    assert!(scan("cache_unwrap/violate.rs", EXP_PATH).is_empty());
}

#[test]
fn pragma_fixtures() {
    let v = scan("pragma/violate.rs", EXP_PATH);
    assert_eq!(rules(&v), vec!["pragma", "pragma", "pragma"]);
    assert!(
        v.iter().all(|f| f.suppressed.is_none()),
        "pragma findings are unsuppressible"
    );

    // A well-formed but unused pragma is not a finding.
    assert!(scan("pragma/clean.rs", EXP_PATH).is_empty());
}
