//! Enumeration correctness of the baseline protocols under their modified
//! parameter sets — the Gs18 flags shrink the leader block of the state
//! codec (cnt ∈ {0,1} instead of {0..2Φ+3}), which must stay in sync with
//! the encoder.

use baselines::Gs18;
use ppsim::{run_until_stable, EnumerableProtocol, Protocol, Simulator, UrnSim};

#[test]
fn gs18_codec_roundtrips_every_state() {
    let p = Gs18::for_population(1 << 10);
    for id in 0..p.num_states() {
        let s = p.state_from_id(id);
        assert_eq!(p.state_id(s), id, "id {id}");
    }
}

#[test]
fn gs18_transitions_stay_in_state_space() {
    // Drive transitions from a sample of decoded state pairs; every output
    // must encode within bounds. (Random-ish deterministic sample to keep
    // the quadratic pairing affordable.)
    let p = Gs18::for_population(1 << 10);
    let n_states = p.num_states();
    let mut checked = 0u64;
    for a in (0..n_states).step_by(97) {
        for b in (0..n_states).step_by(131) {
            let (r2, i2) = p.transition(p.state_from_id(a), p.state_from_id(b));
            assert!(p.state_id(r2) < n_states);
            assert!(p.state_id(i2) < n_states);
            checked += 1;
        }
    }
    assert!(checked > 1000);
}

#[test]
fn gs18_runs_on_the_urn_simulator() {
    let n = 1u64 << 9;
    let mut sim = UrnSim::new(Gs18::for_population(n), n, 5);
    let res = run_until_stable(&mut sim, 100_000 * n);
    assert!(res.converged);
    assert_eq!(sim.leaders(), 1);
}

#[test]
fn gs18_leaders_hold_small_cnt_only() {
    // The skip_fast_elim countdown starts at 1: no leader state with a
    // larger cnt is reachable, and the codec's leader block reflects it.
    let p = Gs18::for_population(1 << 10);
    assert_eq!(p.params().cnt_init(), 1);
    // Decode the full space: leader cnt fields never exceed 1.
    for id in 0..p.num_states() {
        if let core_protocol::Role::L { cnt, .. } = p.state_from_id(id).role {
            assert!(cnt <= 1, "id {id} decodes cnt {cnt}");
        }
    }
}
