//! Property tests for the baseline protocols: state-space closure and
//! elimination monotonicity.

use baselines::{Bkko18, BkkoState, Gs18, SlowLe};
use ppsim::{EnumerableProtocol, Protocol};
use proptest::prelude::*;

fn arb_bkko_state(m: u16) -> impl Strategy<Value = BkkoState> {
    (
        0..m,
        any::<bool>(),
        any::<bool>(),
        0u8..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(counter, parity, candidate, flip, void, round_parity)| BkkoState {
                counter,
                parity,
                candidate,
                flip: match flip {
                    0 => baselines::bkko18::BkkoFlip::None,
                    1 => baselines::bkko18::BkkoFlip::Heads,
                    _ => baselines::bkko18::BkkoFlip::Tails,
                },
                void,
                round_parity,
            },
        )
}

proptest! {
    /// Bkko18's transition never leaves the enumerated state space.
    #[test]
    fn bkko_transitions_stay_enumerable(
        a in arb_bkko_state(60),
        b in arb_bkko_state(60),
    ) {
        let p = Bkko18::with_modulus(60);
        let (a2, b2) = p.transition(a, b);
        for s in [a2, b2] {
            let id = p.state_id(s);
            prop_assert!(id < p.num_states());
            prop_assert_eq!(p.state_from_id(id), s);
        }
    }

    /// Bkko18 never creates candidates.
    #[test]
    fn bkko_candidacy_is_monotone(
        a in arb_bkko_state(60),
        b in arb_bkko_state(60),
    ) {
        let p = Bkko18::with_modulus(60);
        let before = a.candidate as u8 + b.candidate as u8;
        let (a2, b2) = p.transition(a, b);
        let after = a2.candidate as u8 + b2.candidate as u8;
        prop_assert!(after <= before);
    }

    /// Two Bkko18 candidates meeting lose exactly one of them (the duel),
    /// never both.
    #[test]
    fn bkko_duel_keeps_exactly_one(
        a in arb_bkko_state(60),
        b in arb_bkko_state(60),
    ) {
        let p = Bkko18::with_modulus(60);
        prop_assume!(a.candidate && b.candidate);
        let (a2, b2) = p.transition(a, b);
        // The duel kills one; the broadcast may kill the responder too,
        // but never both ways: at least one candidate remains unless the
        // responder was eliminated by broadcast AND lost the duel — the
        // duel then spares the initiator. Either way: >= 1 stays.
        prop_assert!(a2.candidate || b2.candidate, "{:?} + {:?} -> {:?} + {:?}", a, b, a2, b2);
    }

    /// The Bkko18 counter advances by exactly one (mod m) for the
    /// responder and not at all for the initiator.
    #[test]
    fn bkko_clock_semantics(
        a in arb_bkko_state(60),
        b in arb_bkko_state(60),
    ) {
        let p = Bkko18::with_modulus(60);
        let (a2, b2) = p.transition(a, b);
        prop_assert_eq!(a2.counter, (a.counter + 1) % 60);
        prop_assert_eq!(b2.counter, b.counter);
        // The responder's parity bit always toggles.
        prop_assert_eq!(a2.parity, !a.parity);
    }

    /// The slow protocol conserves "at least one candidate" pairwise and
    /// eliminates at most one per interaction.
    #[test]
    fn slow_elimination_is_one_at_a_time(a in any::<bool>(), b in any::<bool>()) {
        let p = SlowLe;
        let (a2, b2) = p.transition(a, b);
        let before = a as u8 + b as u8;
        let after = a2 as u8 + b2 as u8;
        prop_assert!(after <= before);
        prop_assert!(before - after <= 1);
        if before >= 1 {
            prop_assert!(after >= 1);
        }
    }
}

#[test]
fn gs18_state_space_is_smaller_than_gsu19_at_every_n() {
    for exp in [9u32, 12, 16, 20] {
        let n = 1u64 << exp;
        let gs = Gs18::for_population(n);
        let gsu = core_protocol::Gsu19::for_population(n);
        assert!(
            gs.num_states() < gsu.num_states(),
            "n=2^{exp}: {} vs {}",
            gs.num_states(),
            gsu.num_states()
        );
    }
}

#[test]
fn bkko_state_count_tracks_log_n() {
    let s10 = Bkko18::for_population(1 << 10).num_states() as f64;
    let s20 = Bkko18::for_population(1 << 20).num_states() as f64;
    let s30 = Bkko18::for_population(1 << 30).num_states() as f64;
    assert!((s20 / s10 - 2.0).abs() < 0.05);
    assert!((s30 / s10 - 3.0).abs() < 0.05);
}
