//! The constant-state slow leader-election protocol of [AAD+04]: every
//! agent starts as a candidate; when two candidates meet, the initiator
//! yields. Always correct; Θ(n) expected parallel time (the last two
//! candidates need Θ(n²) interactions to meet), which is optimal for
//! constant-state protocols by Doty–Soloveichik \[DS15\].
//!
//! This is both the `Table 1` bottom row and the conceptual backup that
//! GSU19 runs embedded as rule (11).

use ppsim::{EnumerableProtocol, Output, Protocol};

/// The 2-state protocol: `true` = leader candidate.
#[derive(Clone, Copy, Debug, Default)]
pub struct SlowLe;

impl Protocol for SlowLe {
    type State = bool;

    fn initial_state(&self) -> bool {
        true
    }

    fn transition(&self, r: bool, i: bool) -> (bool, bool) {
        if r && i {
            (true, false)
        } else {
            (r, i)
        }
    }

    fn output(&self, s: bool) -> Output {
        if s {
            Output::Leader
        } else {
            Output::Follower
        }
    }
}

impl EnumerableProtocol for SlowLe {
    fn num_states(&self) -> usize {
        2
    }
    fn state_id(&self, s: bool) -> usize {
        s as usize
    }
    fn state_from_id(&self, id: usize) -> bool {
        id == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{run_until_stable, AgentSim, Simulator, UrnSim};

    #[test]
    fn elects_unique_leader() {
        let mut sim = AgentSim::new(SlowLe, 128, 7);
        let res = run_until_stable(&mut sim, 10_000_000);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn leader_count_never_increases() {
        let mut sim = AgentSim::new(SlowLe, 64, 3);
        let mut prev = sim.leaders();
        for _ in 0..20_000 {
            sim.step();
            assert!(sim.leaders() <= prev);
            prev = sim.leaders();
        }
    }

    #[test]
    fn expected_time_is_linear() {
        // Mean convergence time should grow roughly linearly in n: the
        // ratio t/n is approximately constant (Θ(n) expected time).
        let mut ratios = Vec::new();
        for &n in &[64u64, 256] {
            let mut total = 0.0;
            let trials = 20;
            for t in 0..trials {
                let mut sim = AgentSim::new(SlowLe, n as usize, 50 + t);
                let res = run_until_stable(&mut sim, 1_000 * n * n);
                assert!(res.converged);
                total += res.parallel_time;
            }
            ratios.push(total / trials as f64 / n as f64);
        }
        let rel = (ratios[0] - ratios[1]).abs() / ratios[1];
        assert!(rel < 0.5, "t/n not stable across n: {ratios:?}");
    }

    #[test]
    fn urn_equivalent_on_large_population() {
        let mut sim = UrnSim::new(SlowLe, 1 << 20, 9);
        sim.steps(100_000);
        // Candidates decay like n/(1+t/n); after 0.1 parallel time nearly
        // all remain.
        assert!(sim.leaders() > (1 << 20) - 100_000);
    }
}
