//! # baselines — the competing protocols of Table 1
//!
//! Empirical counterparts for the rows of the paper's Table 1, plus
//! ablations of the paper's own design:
//!
//! | Module | Protocol | States | Time |
//! |--------|----------|--------|------|
//! | [`slow`] | AAD+04 constant-state protocol | 2 | Θ(n) expected |
//! | [`gs18`] | GS18-style: junta clock + fair-ish coin rounds, no biased cascade, no drag | O(log log n) | O(log² n) whp |
//! | [`bkko18`] | BKKO18-style: interaction-counter clock + parity-coin rounds | O(log n) | O(log² n) whp |
//! | [`ablations`] | GSU19 variants with pieces removed | — | — |
//!
//! `gs18` and the ablations reuse the verified GSU19 substrate
//! (`core-protocol`) with feature flags, so differences in measured times
//! are attributable to the elimination mechanism rather than incidental
//! implementation choices. `bkko18` is an independent implementation with
//! its own O(log n)-state clock. Simplifications relative to the original
//! papers are documented in the module docs.

pub mod ablations;
pub mod bkko18;
pub mod gs18;
pub mod slow;

pub use ablations::{gsu_direct_withdrawal, gsu_no_backup, gsu_no_drag};
pub use bkko18::{Bkko18, BkkoState};
pub use gs18::Gs18;
pub use slow::SlowLe;
