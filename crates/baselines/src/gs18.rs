//! GS18-style baseline: *"Fast space optimal leader election in population
//! protocols"* (Gąsieniec, Stachowiak; SODA 2018) — the direct predecessor
//! the paper improves on. `O(log log n)` states, `O(log² n)` time whp.
//!
//! Structure: the same junta election and junta-driven phase clock as
//! GSU19, but elimination is a single loop of *uniform* coin rounds — no
//! biased-coin cascade, no drag machinery: every round, each surviving
//! candidate flips the level-0 coin (heads probability ≈ ¼), heads are
//! broadcast in the late half-round, and tails-drawers that hear of heads
//! drop out **directly**. Reducing ≈ n/2 candidates this way takes
//! Θ(log n) rounds of Θ(log n) parallel time each — the Θ(log² n) the
//! paper's fast-elimination cascade (Θ(log log n) rounds) beats.
//!
//! Implementation: GSU19's substrate with `skip_fast_elim` (no cascade),
//! `enable_drag = false` and `direct_withdrawal` (GS18 has no
//! passive/drag safety net; its original synchronisation-failure handling
//! differs in detail, and like our rendition it keeps the slow duel rule as
//! backup). Differences from the SODA'18 original: GS18 flips junta-derived
//! fair coins where we read the level-0 coin (bias ¼ instead of ½ — same
//! Θ(log n) round count, slightly different constant), and GS18's clock
//! phases double as its coin; both simplifications preserve the state and
//! time shape, which is what Table 1 compares.

use core_protocol::{Gsu19, Params};
use ppsim::{CompiledProtocol, EnumerableProtocol, FactoredProtocol, Output, Protocol};

/// GS18-style protocol. Thin wrapper over the shared substrate so that
/// measured differences against [`core_protocol::Gsu19`] isolate the
/// elimination mechanism.
#[derive(Clone, Copy, Debug)]
pub struct Gs18 {
    inner: Gsu19,
}

impl Gs18 {
    /// Instance tuned for a population of size `n`.
    pub fn for_population(n: u64) -> Self {
        let mut p = Params::for_population(n);
        p.skip_fast_elim = true;
        p.enable_drag = false;
        p.direct_withdrawal = true;
        Self {
            inner: Gsu19::new(p),
        }
    }

    /// The underlying parameters.
    pub fn params(&self) -> &Params {
        self.inner.params()
    }

    /// Access the underlying substrate protocol (for census taking).
    pub fn inner(&self) -> &Gsu19 {
        &self.inner
    }

    /// Compile into dense transition tables (see [`ppsim::compiled`]).
    pub fn compiled(self) -> CompiledProtocol<Gs18> {
        CompiledProtocol::new(self)
    }
}

impl Protocol for Gs18 {
    type State = <Gsu19 as Protocol>::State;

    fn initial_state(&self) -> Self::State {
        self.inner.initial_state()
    }

    fn transition(&self, r: Self::State, i: Self::State) -> (Self::State, Self::State) {
        self.inner.transition(r, i)
    }

    fn output(&self, s: Self::State) -> Output {
        self.inner.output(s)
    }
}

impl EnumerableProtocol for Gs18 {
    fn num_states(&self) -> usize {
        self.inner.num_states()
    }
    fn state_id(&self, s: Self::State) -> usize {
        self.inner.state_id(s)
    }
    fn state_from_id(&self, id: usize) -> Self::State {
        self.inner.state_from_id(id)
    }
}

/// Same substrate, same factorisation: delegate the compiled-table
/// contract to the GSU19 implementation.
impl FactoredProtocol for Gs18 {
    fn phase_count(&self) -> usize {
        self.inner.phase_count()
    }
    fn phase_class_count(&self) -> usize {
        self.inner.phase_class_count()
    }
    fn phase_class(&self, bucket: usize) -> usize {
        self.inner.phase_class(bucket)
    }
    fn tick_class_count(&self) -> usize {
        self.inner.tick_class_count()
    }
    fn tick_class(&self, old_phase: usize, new_phase: usize) -> usize {
        self.inner.tick_class(old_phase, new_phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core_protocol::Census;
    use ppsim::{run_until_stable, AgentSim, Simulator};

    #[test]
    fn elects_unique_leader() {
        let n = 1u64 << 10;
        let proto = Gs18::for_population(n);
        let mut sim = AgentSim::new(proto, n as usize, 3);
        let res = run_until_stable(&mut sim, 40_000 * n);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn multiple_seeds_converge() {
        let n = 1u64 << 9;
        for seed in 0..6u64 {
            let proto = Gs18::for_population(n);
            let mut sim = AgentSim::new(proto, n as usize, 200 + seed);
            let res = run_until_stable(&mut sim, 60_000 * n);
            assert!(res.converged, "seed {seed}");
        }
    }

    #[test]
    fn no_fast_elimination_cascade() {
        // cnt starts at 1: after the idle round every candidate is in the
        // final epoch.
        let proto = Gs18::for_population(1 << 10);
        assert_eq!(proto.params().cnt_init(), 1);
        assert_eq!(proto.params().coin_for_cnt(1), None);
        assert_eq!(proto.params().coin_for_cnt(0), Some(0));
    }

    #[test]
    fn produces_no_passives() {
        let n = 1u64 << 10;
        let proto = Gs18::for_population(n);
        let params = *proto.params();
        let mut sim = AgentSim::new(proto, n as usize, 5);
        sim.steps(2_000 * n);
        let c = Census::of(&sim, &params);
        assert_eq!(c.passive, 0);
        assert!(c.alive() >= 1);
    }

    #[test]
    fn fewer_states_than_full_protocol() {
        let gs = Gs18::for_population(1 << 12);
        let gsu = core_protocol::Gsu19::for_population(1 << 12);
        assert!(gs.num_states() < gsu.num_states());
    }
}
