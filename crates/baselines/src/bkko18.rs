//! BKKO18-style baseline: *"Simple and efficient leader election"*
//! (Berenbrink, Kaaser, Kling, Otterbach; SOSA 2018). `O(log n)` states,
//! `O(log² n)` time whp.
//!
//! The interesting contrast with GS18/GSU19 is the clock: instead of a
//! junta-driven phase clock (which needs the level race but only
//! `O(log log n)` states), every agent runs a private **interaction
//! counter** modulo `m = Θ(log n)` — simpler, but the state count is
//! Θ(log n) and rounds are only loosely synchronised (per-agent counters
//! drift like √t). Elimination is the usual coin-round loop: candidates
//! flip the AAE+17 parity coin (p ≈ ½) once per round, heads survive and
//! broadcast in the late half-round, informed tails-drawers drop out; a
//! seniority duel between candidates backs the whole thing up.
//!
//! Simplifications relative to SOSA'18: the original opens with a
//! geometric-level tournament and interleaves its phases differently; we
//! keep the round loop only, which preserves the state/time shape that
//! Table 1 compares (`Θ(log n)` rounds of `Θ(log n)` parallel time).

use ppsim::{EnumerableProtocol, Output, Protocol};

/// Per-round flip record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BkkoFlip {
    None,
    Heads,
    Tails,
}

/// Agent state of the BKKO18-style protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BkkoState {
    /// Own-interaction counter modulo `m` — the private clock.
    pub counter: u16,
    /// AAE+17 parity bit, toggled on every interaction the agent responds
    /// in; the partner's bit is read as a fair coin.
    pub parity: bool,
    /// Still a candidate?
    pub candidate: bool,
    /// This round's flip.
    pub flip: BkkoFlip,
    /// "No heads heard this round."
    pub void: bool,
    /// Parity of the round number: stamps `void` information so that
    /// heads broadcasts from a drifted neighbour's *previous* round are
    /// ignored (private counters drift like √t, so unstamped information
    /// routinely crosses round boundaries and can cull the last
    /// candidate).
    pub round_parity: bool,
}

/// The BKKO18-style protocol.
#[derive(Clone, Copy, Debug)]
pub struct Bkko18 {
    /// Clock modulus `m` (even).
    m: u16,
}

impl Bkko18 {
    /// Instance tuned for a population of size `n`: `m = 6·⌈log₂ n⌉`,
    /// giving late half-rounds of ≈ 3·log₂ n parallel time — enough for
    /// the heads broadcast to complete whp.
    pub fn for_population(n: u64) -> Self {
        let l = (n as f64).log2().ceil() as u16;
        let mut m = 6 * l.max(4);
        if m % 2 == 1 {
            m += 1;
        }
        Self { m }
    }

    /// Explicit clock modulus (testing, ablations).
    pub fn with_modulus(m: u16) -> Self {
        assert!(
            m >= 4 && m.is_multiple_of(2),
            "modulus must be even and >= 4"
        );
        Self { m }
    }

    /// The clock modulus.
    pub fn modulus(&self) -> u16 {
        self.m
    }
}

impl Protocol for Bkko18 {
    type State = BkkoState;

    fn initial_state(&self) -> BkkoState {
        BkkoState {
            counter: 0,
            parity: false,
            candidate: true,
            flip: BkkoFlip::None,
            void: true,
            round_parity: false,
        }
    }

    fn transition(&self, r: BkkoState, i: BkkoState) -> (BkkoState, BkkoState) {
        let mut r_new = r;

        // Private clock tick; wrap = round boundary.
        r_new.counter = (r.counter + 1) % self.m;
        let wrapped = r_new.counter == 0;
        if wrapped {
            r_new.flip = BkkoFlip::None;
            r_new.void = true;
            r_new.round_parity = !r.round_parity;
        }
        let early = !wrapped && r_new.counter < self.m / 2;
        let late = !wrapped && r_new.counter >= self.m / 2;

        // Parity coin: the responder toggles its bit each interaction and
        // reads the partner's (pre-interaction) bit when flipping.
        r_new.parity = !r.parity;

        if early && r_new.candidate && r_new.flip == BkkoFlip::None {
            if i.parity {
                r_new.flip = BkkoFlip::Heads;
                r_new.void = false;
            } else {
                r_new.flip = BkkoFlip::Tails;
            }
        }

        if late && r_new.void && !i.void && i.round_parity == r_new.round_parity {
            r_new.void = false;
            if r_new.candidate && r_new.flip == BkkoFlip::Tails {
                r_new.candidate = false;
            }
        }

        // Backup duel: two candidates meet, the junior (by flip rank, ties
        // to the responder) yields.
        let mut i_new = i;
        if r_new.candidate && i_new.candidate {
            let rank = |f: BkkoFlip| match f {
                BkkoFlip::Heads => 2u8,
                BkkoFlip::None => 1,
                BkkoFlip::Tails => 0,
            };
            if rank(r_new.flip) >= rank(i_new.flip) {
                i_new.candidate = false;
            } else {
                r_new.candidate = false;
            }
        }

        (r_new, i_new)
    }

    fn output(&self, s: BkkoState) -> Output {
        if s.candidate {
            Output::Leader
        } else {
            Output::Follower
        }
    }
}

impl EnumerableProtocol for Bkko18 {
    fn num_states(&self) -> usize {
        self.m as usize * 2 * 2 * 3 * 2 * 2
    }

    fn state_id(&self, s: BkkoState) -> usize {
        let flip = match s.flip {
            BkkoFlip::None => 0,
            BkkoFlip::Heads => 1,
            BkkoFlip::Tails => 2,
        };
        (((((s.counter as usize) * 2 + s.parity as usize) * 2 + s.candidate as usize) * 3 + flip)
            * 2
            + s.void as usize)
            * 2
            + s.round_parity as usize
    }

    fn state_from_id(&self, id: usize) -> BkkoState {
        let round_parity = id % 2 == 1;
        let id = id / 2;
        let void = id % 2 == 1;
        let id = id / 2;
        let flip = match id % 3 {
            0 => BkkoFlip::None,
            1 => BkkoFlip::Heads,
            _ => BkkoFlip::Tails,
        };
        let id = id / 3;
        let candidate = id % 2 == 1;
        let id = id / 2;
        let parity = id % 2 == 1;
        let counter = (id / 2) as u16;
        BkkoState {
            counter,
            parity,
            candidate,
            flip,
            void,
            round_parity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppsim::{run_until_stable, AgentSim, Simulator};

    #[test]
    fn enumeration_roundtrips() {
        let p = Bkko18::for_population(1 << 10);
        for id in 0..p.num_states() {
            let s = p.state_from_id(id);
            assert_eq!(p.state_id(s), id);
        }
    }

    #[test]
    fn state_count_is_logarithmic() {
        let small = Bkko18::for_population(1 << 10).num_states();
        let large = Bkko18::for_population(1 << 20).num_states();
        // m doubles when log n doubles.
        assert_eq!(large, 2 * small);
    }

    #[test]
    fn elects_unique_leader() {
        let n = 1u64 << 10;
        let proto = Bkko18::for_population(n);
        let mut sim = AgentSim::new(proto, n as usize, 3);
        let res = run_until_stable(&mut sim, 60_000 * n);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn multiple_seeds_converge() {
        let n = 1u64 << 9;
        for seed in 0..6u64 {
            let proto = Bkko18::for_population(n);
            let mut sim = AgentSim::new(proto, n as usize, 400 + seed);
            let res = run_until_stable(&mut sim, 100_000 * n);
            assert!(res.converged, "seed {seed}");
            assert_eq!(sim.leaders(), 1);
        }
    }

    #[test]
    fn candidate_count_is_monotone() {
        let n = 1u64 << 10;
        let proto = Bkko18::for_population(n);
        let mut sim = AgentSim::new(proto, n as usize, 9);
        let mut prev = sim.leaders();
        for _ in 0..200 {
            sim.steps(n / 2);
            let cur = sim.leaders();
            assert!(cur <= prev, "candidates increased");
            prev = cur;
        }
    }

    #[test]
    fn stable_after_convergence() {
        let n = 1u64 << 9;
        let proto = Bkko18::for_population(n);
        let mut sim = AgentSim::new(proto, n as usize, 11);
        let res = run_until_stable(&mut sim, 100_000 * n);
        assert!(res.converged);
        for _ in 0..50 {
            sim.steps(n);
            assert_eq!(sim.leaders(), 1);
        }
    }

    #[test]
    fn modulus_validation() {
        let p = Bkko18::with_modulus(12);
        assert_eq!(p.modulus(), 12);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_modulus_rejected() {
        let _ = Bkko18::with_modulus(13);
    }
}
