//! Ablations of the GSU19 protocol — each removes one design element the
//! paper argues is load-bearing, so the benches can show what that element
//! buys (experiment `ABL` in EXPERIMENTS.md).

use core_protocol::{Gsu19, Params};

/// GSU19 without the drag/inhibitor machinery (rules (8)–(10) disabled).
///
/// Passive candidates can then only be withdrawn by direct seniority duels
/// (rule (11)), whose last stragglers need Θ(n) parallel time — this is the
/// Section 7 argument for why the drag counter is what makes the
/// `O(log n log log n)` *expected stabilisation* bound possible.
pub fn gsu_no_drag(n: u64) -> Gsu19 {
    let mut p = Params::for_population(n);
    p.enable_drag = false;
    Gsu19::new(p)
}

/// GSU19 with direct elimination: tails-drawers withdraw to `W` instead of
/// turning passive.
///
/// As fast as the real protocol whp, but *not* Las Vegas: a
/// desynchronisation (or sheer bad luck at small n) can cull every
/// candidate, and then no leader ever emerges — the failure mode the
/// passive/drag construction exists to rule out. The `ablation` bench
/// measures its failure rate.
pub fn gsu_direct_withdrawal(n: u64) -> Gsu19 {
    let mut p = Params::for_population(n);
    p.enable_drag = false;
    p.direct_withdrawal = true;
    Gsu19::new(p)
}

/// GSU19 without the slow backup (rule (11) disabled).
///
/// Isolates the phase-clock machinery: elimination happens only through
/// coin rounds. Convergence still occurs whp, but alive–alive ties that
/// the coins cannot break (e.g. two candidates that always flip the same
/// way in a void round pattern) are no longer cleaned up by duels.
pub fn gsu_no_backup(n: u64) -> Gsu19 {
    let mut p = Params::for_population(n);
    p.enable_backup = false;
    Gsu19::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use core_protocol::Census;
    use ppsim::{run_until_stable, AgentSim, Simulator};

    #[test]
    fn no_drag_still_reaches_few_alive_quickly() {
        // Without drag the protocol still gets to a handful of alive
        // candidates fast; full stabilisation has a heavy tail, so we only
        // check the fast part here (the tail is measured by the bench).
        let n = 1u64 << 10;
        let proto = gsu_no_drag(n);
        let params = *proto.params();
        let mut sim = AgentSim::new(proto, n as usize, 3);
        sim.steps(3_000 * n);
        let c = Census::of(&sim, &params);
        assert!(c.alive() >= 1);
        assert!(
            c.active <= 4 * (n as f64).log2() as u64,
            "actives: {}",
            c.active
        );
    }

    #[test]
    fn no_drag_never_advances_drag() {
        let n = 1u64 << 10;
        let proto = gsu_no_drag(n);
        let params = *proto.params();
        let mut sim = AgentSim::new(proto, n as usize, 5);
        sim.steps(3_000 * n);
        let c = Census::of(&sim, &params);
        assert_eq!(c.max_alive_drag.unwrap_or(0), 0);
        assert!(c.inhibitor_high.iter().all(|&h| h == 0));
    }

    #[test]
    fn direct_withdrawal_produces_no_passives() {
        let n = 1u64 << 10;
        let proto = gsu_direct_withdrawal(n);
        let params = *proto.params();
        let mut sim = AgentSim::new(proto, n as usize, 7);
        sim.steps(3_000 * n);
        let c = Census::of(&sim, &params);
        assert_eq!(c.passive, 0);
    }

    #[test]
    fn direct_withdrawal_converges_on_good_seeds() {
        let n = 1u64 << 9;
        let proto = gsu_direct_withdrawal(n);
        let mut sim = AgentSim::new(proto, n as usize, 11);
        let res = run_until_stable(&mut sim, 30_000 * n);
        assert!(res.converged);
        assert_eq!(sim.leaders(), 1);
    }

    #[test]
    fn no_backup_still_converges() {
        let n = 1u64 << 9;
        let proto = gsu_no_backup(n);
        let mut sim = AgentSim::new(proto, n as usize, 13);
        let res = run_until_stable(&mut sim, 60_000 * n);
        assert!(res.converged, "no-backup variant did not converge");
        assert_eq!(sim.leaders(), 1);
    }
}
