//! Compare the leader-election protocols of the paper's Table 1 on one
//! population: states used and parallel time to stabilisation.
//!
//! ```sh
//! cargo run --release --example compare_protocols [n] [trials]
//! ```
//!
//! The comparison is a `ppexp` experiment: the protocol registry supplies
//! state counts and the paper's asymptotics, and the stabilisation times
//! come from the experiment engine's aggregates — the same pipeline as
//! `ppctl run --protocol slow,gs18,bkko18,gsu19`.

use population_protocols::ppexp::{run_experiment, ExperimentSpec, ProtocolKind, StopCondition};
use population_protocols::ppsim::table::{fnum, Table};

/// Stabilisation-time aggregates for some protocols at one population.
fn measure(
    protocols: &[ProtocolKind],
    n: u64,
    trials: usize,
    seed: u64,
) -> Vec<(ProtocolKind, f64, f64)> {
    let spec = ExperimentSpec {
        protocols: protocols.to_vec(),
        ns: vec![n],
        trials,
        seed,
        stop: StopCondition::Stabilize {
            budget_pt: 100_000.0,
        },
        ..ExperimentSpec::default()
    };
    let artifact = run_experiment(&spec).expect("comparison spec is valid");
    artifact
        .configs
        .iter()
        .map(|config| {
            assert_eq!(
                config.failures,
                0,
                "{} missed the budget",
                config.protocol.name()
            );
            let agg = config.aggregate("time").expect("converged trials");
            (config.protocol, agg.mean, agg.median)
        })
        .collect()
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 11);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!("Leader election on n = {n} agents ({trials} trials each)\n");
    let mut t = Table::new([
        "protocol",
        "states",
        "mean time",
        "median",
        "asymptotics (paper)",
    ]);

    // The slow protocol is Θ(n) expected time, so it gets a capped
    // population of its own; the log-time protocols share one spec.
    let slow_n = n.min(1 << 9);
    let rows = measure(&[ProtocolKind::Slow], slow_n, trials, 1)
        .into_iter()
        .map(|(p, mean, median)| (p, slow_n, mean, median))
        .chain(
            measure(
                &[
                    ProtocolKind::Gs18,
                    ProtocolKind::Bkko18,
                    ProtocolKind::Gsu19,
                ],
                n,
                trials,
                2,
            )
            .into_iter()
            .map(|(p, mean, median)| (p, n, mean, median)),
        );

    for (protocol, n, mean, median) in rows {
        let label = match protocol {
            ProtocolKind::Slow => format!("slow [AAD+04] (n = {n})"),
            ProtocolKind::Gsu19 => "gsu19 (this paper)".to_string(),
            other => other.name().to_string(),
        };
        t.row([
            label,
            protocol.num_states(n).to_string(),
            fnum(mean),
            fnum(median),
            protocol.paper_bounds().to_string(),
        ]);
    }

    t.print();
    println!(
        "\nNote: at laptop-scale n the absolute times of gs18 and gsu19 are\n\
         close — the asymptotic gap is Θ(log n) vs Θ(log log n) *elimination\n\
         rounds*, and log₄ n only pulls clear of 2Φ+3 beyond n ≈ 2²⁴. Run the\n\
         bench harness (cargo bench) for the trend analysis."
    );
}
