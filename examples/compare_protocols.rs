//! Compare the leader-election protocols of the paper's Table 1 on one
//! population: states used and parallel time to stabilisation.
//!
//! ```sh
//! cargo run --release --example compare_protocols [n] [trials]
//! ```

use population_protocols::baselines::{Bkko18, Gs18, SlowLe};
use population_protocols::core::Gsu19;
use population_protocols::ppsim::stats::Summary;
use population_protocols::ppsim::table::{fnum, Table};
use population_protocols::ppsim::{
    run_trials, run_until_stable, AgentSim, EnumerableProtocol, Protocol,
};

fn measure<P, F>(make: F, n: u64, trials: usize, seed: u64) -> Summary
where
    P: Protocol,
    F: Fn(u64) -> P + Sync,
{
    let times = run_trials(trials, seed, |_, s| {
        let mut sim = AgentSim::new(make(n), n as usize, s);
        let res = run_until_stable(&mut sim, 100_000 * n);
        assert!(res.converged);
        res.parallel_time
    });
    Summary::of(&times)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1 << 11);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);

    println!("Leader election on n = {n} agents ({trials} trials each)\n");
    let mut t = Table::new([
        "protocol",
        "states",
        "mean time",
        "median",
        "asymptotics (paper)",
    ]);

    let s = measure(|_| SlowLe, n.min(1 << 9), trials, 1);
    t.row([
        format!("slow [AAD+04] (n = {})", n.min(1 << 9)),
        "2".into(),
        fnum(s.mean),
        fnum(s.median),
        "O(1) states, O(n) expected".into(),
    ]);

    let s = measure(Gs18::for_population, n, trials, 2);
    t.row([
        "gs18".into(),
        Gs18::for_population(n).num_states().to_string(),
        fnum(s.mean),
        fnum(s.median),
        "O(log log n) states, O(log² n) whp".into(),
    ]);

    let s = measure(Bkko18::for_population, n, trials, 3);
    t.row([
        "bkko18".into(),
        Bkko18::for_population(n).num_states().to_string(),
        fnum(s.mean),
        fnum(s.median),
        "O(log n) states, O(log² n) whp".into(),
    ]);

    let s = measure(Gsu19::for_population, n, trials, 4);
    t.row([
        "gsu19 (this paper)".into(),
        Gsu19::for_population(n).num_states().to_string(),
        fnum(s.mean),
        fnum(s.median),
        "O(log log n) states, O(log n·log log n) expected".into(),
    ]);

    t.print();
    println!(
        "\nNote: at laptop-scale n the absolute times of gs18 and gsu19 are\n\
         close — the asymptotic gap is Θ(log n) vs Θ(log log n) *elimination\n\
         rounds*, and log₄ n only pulls clear of 2Φ+3 beyond n ≈ 2²⁴. Run the\n\
         bench harness (cargo bench) for the trend analysis."
    );
}
