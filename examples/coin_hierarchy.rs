//! The biased-coin hierarchy (Section 5 / Figure 1): anonymous agents
//! manufacture a family of coins with doubly-exponentially decreasing
//! heads probability, then we *use* them — estimating each coin's bias
//! empirically the same way the leader candidates do (responder reads
//! "is the initiator a coin at level ≥ ℓ?").
//!
//! ```sh
//! cargo run --release --example coin_hierarchy [n]
//! ```

use population_protocols::core::{Census, Gsu19};
use population_protocols::ppsim::table::{fnum, Table};
use population_protocols::ppsim::{AgentSim, Simulator};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 14);

    let protocol = Gsu19::for_population(n);
    let params = *protocol.params();
    let mut sim = AgentSim::new(protocol, n as usize, 99);

    // Let the partition and the coin race settle.
    let settle = (60.0 * (n as f64).log2()) as u64 * n;
    sim.steps(settle);
    let census = Census::of(&sim, &params);

    println!(
        "n = {n}: coin race settled after {:.0} parallel time\n",
        sim.parallel_time()
    );

    // Estimate each coin's bias the way a leader candidate experiences it:
    // sample a uniformly random agent and check its level.
    let mut rng = SmallRng::seed_from_u64(5);
    let draws = 200_000;
    let states = sim.states();
    let mut heads = vec![0u64; params.phi as usize + 1];
    for _ in 0..draws {
        let partner = states[rng.gen_range(0..states.len())];
        for level in 0..=params.phi {
            if population_protocols::core::coins::read_coin(&partner.role, level) {
                heads[level as usize] += 1;
            }
        }
    }

    let mut t = Table::new([
        "coin level",
        "C_l (agents)",
        "bias (measured)",
        "bias (idealised)",
        "1/bias",
    ]);
    for level in 0..=params.phi {
        let measured = heads[level as usize] as f64 / draws as f64;
        t.row([
            format!(
                "{level}{}",
                if level == params.phi { " (junta)" } else { "" }
            ),
            census.coins_at_least(level).to_string(),
            format!("{measured:.5}"),
            format!("{:.5}", params.coin_bias(level)),
            fnum(1.0 / measured),
        ]);
    }
    t.print();

    println!(
        "\nEach level squares the previous fraction (Lemmas 5.1/5.2): a leader\n\
         candidate flipping coin ℓ survives with probability ≈ C_ℓ/n, which is\n\
         how the fast-elimination epoch cuts n/2 candidates to O(log n) in\n\
         only 2Φ+2 rounds (Figure 2)."
    );
}
