//! Narrated run of the paper's protocol: a census at every clock round
//! showing the three epochs unfold — partition, fast elimination with
//! biased coins, final elimination with the drag counter.
//!
//! ```sh
//! cargo run --release --example trace_epochs [n]
//! ```

use population_protocols::core::{Census, Gsu19};
use population_protocols::ppsim::table::Table;
use population_protocols::ppsim::{AgentSim, Simulator};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 12);

    let protocol = Gsu19::for_population(n);
    let params = *protocol.params();
    println!(
        "n = {n}, Φ = {}, Ψ = {}, Γ = {}, cnt starts at {}\n",
        params.phi,
        params.psi,
        params.gamma,
        params.cnt_init()
    );

    let mut sim = AgentSim::new(protocol, n as usize, 7);
    let mut t = Table::new([
        "round",
        "par.time",
        "epoch",
        "active",
        "passive",
        "withdrawn",
        "coins",
        "junta",
        "uninit",
        "max drag",
    ]);

    let mut last_phase = 0u16;
    let mut round = 0usize;
    let budget = 40_000 * n;
    while sim.interactions() < budget && round < 40 {
        sim.steps(n / 8);
        let phase = sim.states()[0].phase;
        if phase < last_phase {
            round += 1;
            let c = Census::of(&sim, &params);
            let epoch = match c.max_cnt {
                Some(x) if x == params.cnt_init() => "init".to_string(),
                Some(0) => "final elim".to_string(),
                Some(x) => format!("fast elim (coin {})", params.coin_for_cnt(x).unwrap_or(0)),
                None => "-".to_string(),
            };
            t.row([
                round.to_string(),
                format!("{:.0}", sim.parallel_time()),
                epoch,
                c.active.to_string(),
                c.passive.to_string(),
                c.withdrawn.to_string(),
                c.coins().to_string(),
                c.coin_levels[params.phi as usize].to_string(),
                c.uninitialised().to_string(),
                c.max_alive_drag.map(|d| d.to_string()).unwrap_or_default(),
            ]);
            if sim.is_stably_elected() && c.alive() == 1 {
                break;
            }
        }
        last_phase = phase;
    }
    t.print();

    let c = Census::of(&sim, &params);
    println!(
        "\nfinal: {} active, {} passive, {} withdrawn — {}",
        c.active,
        c.passive,
        c.withdrawn,
        if sim.is_stably_elected() {
            "unique leader elected"
        } else {
            "still running (raise the budget or rounds cap)"
        }
    );
}
