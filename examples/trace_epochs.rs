//! Narrated run of the paper's protocol: a census at every epoch
//! transition showing the three phases unfold — partition, fast
//! elimination with biased coins, final elimination with the drag
//! counter.
//!
//! Epochs are reported by the protocol itself (`Protocol::epoch_of`
//! maps a leader's fast-elimination counter to an epoch index) and
//! observed through the `ppsim::runner` epoch hook — this example is
//! the minimal direct use of `run_until_with_epochs`; the `ppexp`
//! `epoch_candidates` observable wraps the same mechanism for artifact
//! pipelines.
//!
//! ```sh
//! cargo run --release --example trace_epochs [n]
//! ```

use population_protocols::core::{Census, Gsu19};
use population_protocols::ppsim::table::Table;
use population_protocols::ppsim::{run_until_with_epochs, AgentSim, BatchPolicy, Simulator};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 12);

    let protocol = Gsu19::for_population(n);
    let params = *protocol.params();
    println!(
        "n = {n}, Φ = {}, Ψ = {}, Γ = {}, cnt starts at {}\n",
        params.phi,
        params.psi,
        params.gamma,
        params.cnt_init()
    );

    let mut sim = AgentSim::new(protocol, n as usize, 7);
    let mut t = Table::new([
        "epoch",
        "par.time",
        "phase",
        "active",
        "passive",
        "withdrawn",
        "coins",
        "junta",
        "uninit",
        "max drag",
    ]);

    // The batch policy sets the check granularity: epoch polls (and the
    // stabilisation predicate) run every n/8 interactions, like the old
    // hand-rolled loop — per-step polling would cost O(n) per step.
    let policy = BatchPolicy::Adaptive {
        shift: 3,
        min_population: 4,
    };
    let budget = 40_000 * n;
    let mut observer = |sim: &AgentSim<Gsu19>, epoch: u32| {
        let c = Census::of(sim, &params);
        let cnt = params.cnt_init().saturating_sub(epoch as u8);
        let phase = if cnt == params.cnt_init() {
            "init".to_string()
        } else if cnt == 0 {
            "final elim".to_string()
        } else {
            format!("fast elim (coin {})", params.coin_for_cnt(cnt).unwrap_or(0))
        };
        t.row([
            epoch.to_string(),
            format!("{:.0}", sim.parallel_time()),
            phase,
            c.active.to_string(),
            c.passive.to_string(),
            c.withdrawn.to_string(),
            c.coins().to_string(),
            c.coin_levels[params.phi as usize].to_string(),
            c.uninitialised().to_string(),
            c.max_alive_drag.map(|d| d.to_string()).unwrap_or_default(),
        ]);
    };
    run_until_with_epochs(
        &mut sim,
        &policy,
        budget,
        |s| s.is_stably_elected(),
        &mut observer,
    );

    t.print();

    let c = Census::of(&sim, &params);
    println!(
        "\nfinal: {} active, {} passive, {} withdrawn — {}",
        c.active,
        c.passive,
        c.withdrawn,
        if sim.is_stably_elected() {
            "unique leader elected"
        } else {
            "still running (raise the budget)"
        }
    );
}
