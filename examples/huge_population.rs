//! Simulating a population of a **billion** agents on a laptop: the urn
//! simulator stores one counter per *state* instead of one entry per
//! agent, so memory is O(|states|) and the population size only bounds
//! the counters.
//!
//! With batched multinomial sampling (`ppsim::batch`) whole blocks of
//! n/64 interactions are drawn at once, so even *parallel-time-scale*
//! horizons at n = 2³⁰ — billions of interactions — run in well under a
//! second. The example follows the protocol through its opening (the
//! partition rules, the coin race, the first junta levels) and prints the
//! census trajectory.
//!
//! The run is a `ppexp` horizon experiment with census observables
//! sampled at doubling parallel times — the declarative form of "follow
//! the opening", identical to
//! `ppctl run --protocol gsu19 --engine urn-batched --n 1073741824 \
//!  --trials 1 --at 8 --sample-at 0.5,1,2,4,8 --observables census`.
//!
//! ```sh
//! cargo run --release --example huge_population
//! ```

use population_protocols::core::Gsu19;
use population_protocols::ppexp::{
    run_experiment, EngineKind, ExperimentSpec, Observables, ProtocolKind, StopCondition,
};
use population_protocols::ppsim::table::Table;

fn main() {
    let n: u64 = 1 << 30;
    let params = *Gsu19::for_population(n).params();
    println!(
        "n = 2^30 = {n} agents, Φ = {}, Ψ = {}, Γ = {}, {} states, urn memory ≈ {} KiB\n",
        params.phi,
        params.psi,
        params.gamma,
        params.num_states(),
        params.num_states() * 8 / 1024,
    );

    let spec = ExperimentSpec {
        protocols: vec![ProtocolKind::Gsu19],
        engine: EngineKind::UrnBatched,
        ns: vec![n],
        trials: 1,
        seed: 1234,
        observables: Observables::parse("census").expect("registered"),
        stop: StopCondition::Horizon { at_pt: 8.0 },
        sample_at: vec![0.5, 1.0, 2.0, 4.0, 8.0],
        ..ExperimentSpec::default()
    };
    let artifact = run_experiment(&spec).expect("huge-population spec is valid");
    let record = &artifact.configs[0].trials[0];

    // Parallel times 0.5, 1, 2, 4, 8: over 8.5 billion interactions. The
    // sequential urn path would need ~35 minutes for this; batches of n/64
    // do it in a few hundred batch draws total.
    let trace = |name: &str| {
        record
            .outcome
            .traces
            .iter()
            .find(|s| s.name == name)
            .expect("census trace recorded")
    };
    let mut t = Table::new([
        "parallel time",
        "zero",
        "X",
        "coins",
        "inhibitors",
        "leaders(alive)",
    ]);
    let zero = trace("zero");
    for (k, &target) in spec.sample_at.iter().enumerate() {
        t.row([
            format!("{target}"),
            format!("{}", zero.v[k] as u64),
            format!("{}", trace("x").v[k] as u64),
            format!("{}", trace("coins").v[k] as u64),
            format!("{}", trace("inhibitors").v[k] as u64),
            format!("{}", trace("alive").v[k] as u64),
        ]);
    }
    t.print();

    println!(
        "\n{} interactions simulated; an agent-array for 2^30 agents of\n\
         this protocol would need ≥ 8 GiB, the urn holds {} counters and\n\
         samples whole batches of {} interactions at a time.\n\
         Replay this exact trial: ppctl run --protocol gsu19 --engine urn-batched \
         --n {n} --trials 1 --seed 1234 --at 8 --sample-at 0.5,1,2,4,8 \
         --observables census --replay 0:0",
        record.outcome.metric("interactions").unwrap_or(f64::NAN) as u64,
        params.num_states(),
        spec.batch_policy().batch_size(n),
    );
}
