//! Simulating a population of a **billion** agents on a laptop: the urn
//! simulator stores one counter per *state* instead of one entry per
//! agent, so memory is O(|states|) and the population size only bounds
//! the counters.
//!
//! With batched multinomial sampling (`ppsim::batch`) whole blocks of
//! n/64 interactions are drawn at once, so even *parallel-time-scale*
//! horizons at n = 2³⁰ — billions of interactions — run in well under a
//! second. The example follows the protocol through its opening (the
//! partition rules, the coin race, the first junta levels) and prints the
//! census trajectory.
//!
//! ```sh
//! cargo run --release --example huge_population
//! ```

use population_protocols::core::{Census, Gsu19};
use population_protocols::ppsim::table::Table;
use population_protocols::ppsim::{BatchPolicy, Simulator, UrnSim};

fn main() {
    let n: u64 = 1 << 30;
    let protocol = Gsu19::for_population(n);
    let params = *protocol.params();
    println!(
        "n = 2^30 = {n} agents, Φ = {}, Ψ = {}, Γ = {}, {} states, urn memory ≈ {} KiB\n",
        params.phi,
        params.psi,
        params.gamma,
        params.num_states(),
        params.num_states() * 8 / 1024,
    );

    let mut sim = UrnSim::new(protocol, n, 1234);
    let policy = BatchPolicy::adaptive();

    let mut t = Table::new([
        "parallel time",
        "zero",
        "X",
        "coins",
        "inhibitors",
        "leaders(alive)",
    ]);
    // Parallel times 0.5, 1, 2, 4, 8: over 8.5 billion interactions. The
    // sequential urn path would need ~35 minutes for this; batches of n/64
    // do it in a few hundred batch draws total.
    let mut at = 0.0f64;
    for target in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let chunk = ((target - at) * n as f64) as u64;
        sim.steps_batched(chunk, &policy);
        at = target;
        let c = Census::of(&sim, &params);
        t.row([
            format!("{target}"),
            c.zero.to_string(),
            c.x.to_string(),
            c.coins().to_string(),
            c.inhibitors().to_string(),
            c.alive().to_string(),
        ]);
    }
    t.print();

    println!(
        "\n{} interactions simulated; an agent-array for 2^30 agents of\n\
         this protocol would need ≥ 8 GiB, the urn holds {} counters and\n\
         samples whole batches of {} interactions at a time.",
        sim.interactions(),
        params.num_states(),
        policy.batch_size(n)
    );
}
