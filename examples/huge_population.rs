//! Simulating a population of a **billion** agents on a laptop: the urn
//! simulator stores one counter per *state* instead of one entry per
//! agent, so memory is O(|states|) and the population size only bounds
//! the counters.
//!
//! A full stabilisation run at n = 2³⁰ would still need ~10¹² interactions
//! (parallel time × n); this example runs the opening of the protocol —
//! enough to watch the partition rules and the coin race operate at a
//! scale no agent-array could hold comfortably — and prints the census.
//!
//! ```sh
//! cargo run --release --example huge_population
//! ```

use population_protocols::core::{Census, Gsu19};
use population_protocols::ppsim::table::Table;
use population_protocols::ppsim::{Simulator, UrnSim};

fn main() {
    let n: u64 = 1 << 30;
    let protocol = Gsu19::for_population(n);
    let params = *protocol.params();
    println!(
        "n = 2^30 = {n} agents, Φ = {}, Ψ = {}, Γ = {}, {} states, urn memory ≈ {} KiB\n",
        params.phi,
        params.psi,
        params.gamma,
        params.num_states(),
        params.num_states() * 8 / 1024,
    );

    let mut sim = UrnSim::new(protocol, n, 1234);

    let mut t = Table::new([
        "interactions",
        "zero",
        "X",
        "coins",
        "inhibitors",
        "leaders(alive)",
    ]);
    // 40M interactions ≈ 0.037 parallel time: the very beginning, but
    // 40M urn draws run in seconds.
    for step in 1..=4u64 {
        sim.steps(10_000_000);
        let c = Census::of(&sim, &params);
        t.row([
            format!("{}M", step * 10),
            c.zero.to_string(),
            c.x.to_string(),
            c.coins().to_string(),
            c.inhibitors().to_string(),
            c.alive().to_string(),
        ]);
    }
    t.print();

    println!(
        "\nEvery interaction costs O(log |states|) regardless of n; an\n\
         agent-array for 2^30 agents of this protocol would need ≥ 8 GiB,\n\
         the urn holds {} counters.",
        params.num_states()
    );
}
