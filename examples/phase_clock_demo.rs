//! The junta-driven phase clock in isolation (Section 3 / Theorem 3.2):
//! watch anonymous agents carve continuous time into synchronised rounds.
//!
//! A sub-population races levels; the top of the race (the junta) pushes
//! the circular phase forward, everyone else follows the `max_Γ` epidemic.
//! The demo prints the phase distribution as a strip chart every few
//! parallel-time units — the travelling wave and the synchronised wraps
//! are clearly visible — and then reports the measured round statistics.
//!
//! ```sh
//! cargo run --release --example phase_clock_demo [n]
//! ```

use population_protocols::components::clock_protocol::{ClockProtocol, ROUND_MOD};
use population_protocols::ppsim::{AgentSim, Simulator};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1 << 12);
    let gamma = 24u16;
    let protocol = ClockProtocol::new(n, gamma);
    println!(
        "n = {n}, Γ = {gamma}, race cap Φ = {} (expected junta ≈ {:.0} agents)\n",
        protocol.phi(),
        population_protocols::components::junta::expected_fraction_at_level(0.25, protocol.phi())
            * n as f64,
    );

    let mut sim = AgentSim::new(protocol, n as usize, 7);

    println!("phase distribution over time (each column = one phase value, '#' ∝ agents):");
    let mut shown = 0;
    while shown < 24 {
        sim.steps(4 * n);
        shown += 1;
        let mut hist = vec![0u64; gamma as usize];
        for s in sim.states() {
            hist[s.phase as usize] += 1;
        }
        let max = *hist.iter().max().unwrap() as f64;
        let strip: String = hist
            .iter()
            .map(|&c| {
                let x = c as f64 / max;
                if x > 0.5 {
                    '#'
                } else if x > 0.1 {
                    '+'
                } else if c > 0 {
                    '.'
                } else {
                    ' '
                }
            })
            .collect();
        println!("t={:5.0} |{strip}|", sim.parallel_time());
    }

    // Round statistics from agent 0's counter.
    let mut last = sim.states()[0].rounds;
    let mut t_mark = sim.parallel_time();
    let mut lens = Vec::new();
    while lens.len() < 8 {
        sim.steps(n / 4);
        let r = sim.states()[0].rounds;
        if r != last {
            let steps = (r + ROUND_MOD - last) % ROUND_MOD;
            let t = sim.parallel_time();
            lens.push((t - t_mark) / steps as f64);
            t_mark = t;
            last = r;
        }
    }
    let mean: f64 = lens.iter().sum::<f64>() / lens.len() as f64;
    println!(
        "\nmeasured round length ≈ {:.1} parallel time ≈ {:.1} × log₂ n  (Theorem 3.2: Θ(log n))",
        mean,
        mean / (n as f64).log2()
    );
}
