//! Quickstart: elect a leader among 2048 anonymous agents.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use population_protocols::core::Gsu19;
use population_protocols::ppsim::{run_until_stable, AgentSim, Simulator};

fn main() {
    let n: u64 = 2048;

    // The protocol is non-uniform: instances are tuned for a population
    // size (coin level cap Φ, drag cap Ψ, clock modulus Γ).
    let protocol = Gsu19::for_population(n);
    println!(
        "GSU19 for n = {n}: Φ = {}, Ψ = {}, Γ = {}, {} states",
        protocol.params().phi,
        protocol.params().psi,
        protocol.params().gamma,
        protocol.params().num_states(),
    );

    // All agents start in the same state; the random scheduler does the rest.
    let mut sim = AgentSim::new(protocol, n as usize, 0xC0FFEE);
    let result = run_until_stable(&mut sim, 60_000 * n);

    assert!(result.converged, "increase the interaction budget");
    println!(
        "unique leader elected after {} interactions = {:.1} parallel time \
         (≈ {:.1} × log₂ n · log₂ log₂ n)",
        result.interactions,
        result.parallel_time,
        result.parallel_time / ((n as f64).log2() * (n as f64).log2().log2()),
    );
    println!(
        "final outputs: {} leader, {} followers",
        sim.leaders(),
        sim.population() - sim.leaders()
    );
}
